//! Chaos property tests (docs/faults.md): random seeded fault schedules
//! across all five paper algorithms must never break node conservation or
//! termination, and the null plan must be invisible.
//!
//! - Every faulted run terminates (watchdogs panic on livelock in debug
//!   builds, which is how these tests run under tier-1) and counts the tree
//!   exactly against a sequential traversal.
//! - [`FaultPlan::none()`] reproduces the fault-free run bit-for-bit — same
//!   makespan, same per-thread counters, same comm stats — in both
//!   conductor modes, so the fault layer costs nothing when disabled.

use pgas::{FaultPlan, MachineModel};
use uts_dlb::worksteal::{
    run_sim, seq_run, Algorithm, DagWorkload, RandomLayered, RunConfig, RunReport, UtsGen,
    Wavefront,
};
use uts_tree::presets;
use uts_tree::spec::{GeoShape, TreeSpec};

/// Derive a pseudo-random but deterministic fault plan from `i` by
/// perturbing every knob of the stock seeded plan.
fn random_plan(i: u64) -> FaultPlan {
    let r = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
    FaultPlan {
        seed: r,
        window_ns: 20_000 + (r % 7) * 45_000,
        spike_per_mille: (r >> 8) as u32 % 400,
        spike_mult_x16: 32 + ((r >> 16) as u32 % 8) * 64,
        stall_per_mille: (r >> 24) as u32 % 300,
        straggler_per_mille: (r >> 32) as u32 % 250,
        straggler_mult_x16: 32 + ((r >> 40) as u32 % 4) * 64,
        lock_mult_x16: 16 + ((r >> 48) as u32 % 4) * 16,
        ..FaultPlan::seeded(r)
    }
}

fn faulted_sweep(preset: uts_tree::presets::Preset, schedules: u64, threads: usize) {
    let gen = UtsGen::new(preset.spec);
    let (expect, _) = seq_run(&gen);
    assert_eq!(expect, preset.expected.nodes);
    for alg in Algorithm::paper_set() {
        for i in 0..schedules {
            let mut cfg = RunConfig::new(alg, 4);
            cfg.faults = random_plan(i);
            cfg.steal_timeout_ns = Some(30_000);
            let report = run_sim(MachineModel::kittyhawk(), threads, &gen, &cfg);
            assert_eq!(
                report.total_nodes,
                expect,
                "{} schedule {i} ({:?}) lost or duplicated nodes",
                alg.label(),
                cfg.faults
            );
        }
    }
}

#[test]
fn chaos_t_tiny_all_algorithms() {
    faulted_sweep(presets::t_tiny(), 8, 8);
}

#[test]
fn chaos_t_s_all_algorithms() {
    faulted_sweep(presets::t_s(), 2, 8);
}

/// Field-by-field equality of two reports: virtual results and every
/// counter, ignoring only host wall-clock.
fn assert_bit_identical(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a.makespan_ns, b.makespan_ns, "{what}: makespan");
    assert_eq!(a.total_nodes, b.total_nodes, "{what}: nodes");
    assert_eq!(a.per_thread.len(), b.per_thread.len(), "{what}: threads");
    for (t, (x, y)) in a.per_thread.iter().zip(&b.per_thread).enumerate() {
        assert_eq!(x.nodes, y.nodes, "{what}: thread {t} nodes");
        assert_eq!(x.steals_ok, y.steals_ok, "{what}: thread {t} steals");
        assert_eq!(x.probes, y.probes, "{what}: thread {t} probes");
        assert_eq!(x.state_ns, y.state_ns, "{what}: thread {t} state clock");
        assert_eq!(x.comm, y.comm, "{what}: thread {t} comm stats");
        assert_eq!(
            x.comm.fault_ns, 0,
            "{what}: thread {t} charged fault time with no plan active"
        );
    }
}

/// `FaultPlan::none()` (explicit or default) changes nothing, in either
/// conductor mode.
#[test]
fn none_plan_is_bit_identical_in_both_conductor_modes() {
    let p = presets::t_tiny();
    let gen = UtsGen::new(p.spec);
    for alg in Algorithm::paper_set() {
        for lookahead in [true, false] {
            let mut base = RunConfig::new(alg, 2);
            base.sim_lookahead = lookahead;
            let mut with_none = base;
            with_none.faults = FaultPlan::none();
            let a = run_sim(MachineModel::kittyhawk(), 6, &gen, &base);
            let b = run_sim(MachineModel::kittyhawk(), 6, &gen, &with_none);
            assert_bit_identical(
                &a,
                &b,
                &format!("{} lookahead={lookahead}", alg.label()),
            );
        }
    }
}

/// Derive a deterministic *crash-class* plan from `i`: message loss and
/// duplication plus a guaranteed rank death at a pseudo-random virtual time
/// (kill rate 1000‰ sweeps the hard case on every iteration; the plain
/// `crashy()` rate is exercised by the proptest suite).
fn crash_plan(i: u64) -> FaultPlan {
    let r = i.wrapping_mul(0xD134_2543_DE82_EF95).rotate_left(23);
    FaultPlan {
        loss_per_mille: 20 + (r % 40) as u32,
        dup_per_mille: 20 + ((r >> 8) % 40) as u32,
        kill_per_mille: 1000,
        kill_min_ns: 30_000 + (r >> 16) % 100_000,
        kill_span_ns: 200_000,
        ..FaultPlan::crashy(r)
    }
}

/// Conservation *with multiplicity* (docs/faults.md): under crash faults —
/// lost grants, duplicated grants, and one guaranteed rank death per plan —
/// every node of the tree is explored at least once, and every re-explored
/// node is accounted as a duplicate, so `total - duplicates == tree size`.
#[test]
fn crash_faults_conserve_with_multiplicity() {
    let p = presets::t_tiny();
    let gen = UtsGen::new(p.spec);
    let (expect, _) = seq_run(&gen);
    for alg in Algorithm::paper_set() {
        for i in 0..6u64 {
            let mut cfg = RunConfig::new(alg, 4);
            cfg.faults = crash_plan(i);
            let report = run_sim(MachineModel::kittyhawk(), 8, &gen, &cfg);
            assert!(
                report.deaths <= 1,
                "{} plan {i}: at most one rank dies per plan",
                alg.label()
            );
            assert_eq!(
                report.total_nodes - report.duplicate_nodes,
                expect,
                "{} plan {i} ({:?}) lost nodes: total={} dup={} deaths={}",
                alg.label(),
                cfg.faults,
                report.total_nodes,
                report.duplicate_nodes,
                report.deaths
            );
        }
    }
}

/// The geometric and hybrid tree families (docs/workloads.md) under the
/// same crash sweep: conservation-with-multiplicity is a property of the
/// recovery protocol, not of the binomial law every other chaos case uses.
#[test]
fn geometric_and_hybrid_trees_conserve_under_crash() {
    let specs = [
        ("geometric", TreeSpec::geometric(5, 2.2, 6, GeoShape::ExpDec)),
        ("hybrid", TreeSpec::hybrid(7, 2.5, 3, 2, 0.45)),
    ];
    for (family, mut spec) in specs {
        // Geometric roots draw their child count too, so a seed can yield a
        // single-node tree: scan to the first non-degenerate instance.
        let expect = loop {
            let (expect, _) = seq_run(&UtsGen::new(spec));
            if expect > 30 {
                break expect;
            }
            spec.seed += 100;
        };
        let gen = UtsGen::new(spec);
        for alg in Algorithm::paper_set() {
            for i in 0..3u64 {
                let mut cfg = RunConfig::new(alg, 4);
                cfg.faults = crash_plan(i);
                let report = run_sim(MachineModel::kittyhawk(), 8, &gen, &cfg);
                assert_eq!(
                    report.total_nodes - report.duplicate_nodes,
                    expect,
                    "{family}/{} plan {i} lost nodes: total={} dup={} deaths={}",
                    alg.label(),
                    report.total_nodes,
                    report.duplicate_nodes,
                    report.deaths
                );
            }
        }
    }
}

/// DAG workloads under the crash sweep: each predecessor executes at least
/// once, so every count-up cell still crosses its in-degree and every task
/// is emitted — conservation-with-multiplicity holds with the dependency
/// layer in the loop (docs/workloads.md).
#[test]
fn dag_crash_faults_conserve_with_multiplicity() {
    let wf = DagWorkload::new(Wavefront {
        rows: 8,
        cols: 6,
        seed: 13,
    });
    let rl = DagWorkload::new(RandomLayered::new(5, 8, 200, 11));
    for alg in Algorithm::paper_set() {
        for i in 0..4u64 {
            let mut cfg = RunConfig::new(alg, 4);
            cfg.faults = crash_plan(i);
            for (name, report, expect) in [
                ("wavefront", run_sim(MachineModel::kittyhawk(), 8, &wf, &cfg), wf.n_tasks()),
                ("layered", run_sim(MachineModel::kittyhawk(), 8, &rl, &cfg), rl.n_tasks()),
            ] {
                assert_eq!(
                    report.total_nodes - report.duplicate_nodes,
                    expect,
                    "{name}/{} plan {i} lost tasks: total={} dup={} deaths={}",
                    alg.label(),
                    report.total_nodes,
                    report.duplicate_nodes,
                    report.deaths
                );
            }
        }
    }
}

/// A crash-faulted run — including the death, the adoption, and every
/// re-injected grant — is bit-identical across the fast fiber conductor and
/// the reference OS-thread conductor.
#[test]
fn crash_runs_agree_across_conductors() {
    let p = presets::t_tiny();
    let gen = UtsGen::new(p.spec);
    for alg in Algorithm::paper_set() {
        let mut fast = RunConfig::new(alg, 2);
        fast.faults = crash_plan(3);
        let mut reference = fast;
        reference.sim_lookahead = false;
        let a = run_sim(MachineModel::kittyhawk(), 6, &gen, &fast);
        let b = run_sim(MachineModel::kittyhawk(), 6, &gen, &reference);
        assert_eq!(a.makespan_ns, b.makespan_ns, "{}", alg.label());
        assert_eq!(a.deaths, b.deaths, "{}", alg.label());
        assert_eq!(a.recovered_nodes, b.recovered_nodes, "{}", alg.label());
        assert_eq!(a.duplicate_nodes, b.duplicate_nodes, "{}", alg.label());
        for (t, (x, y)) in a.per_thread.iter().zip(&b.per_thread).enumerate() {
            assert_eq!(x.nodes, y.nodes, "{} thread {t}", alg.label());
            assert_eq!(x.died, y.died, "{} thread {t}", alg.label());
            assert_eq!(x.comm, y.comm, "{} thread {t}", alg.label());
        }
    }
}

/// Derive a deterministic *membership* plan from `i`: a healing partition,
/// a gray stall, a guaranteed kill with restart — the full §8 fault zoo —
/// on top of message loss/duplication.
fn membership_plan(i: u64) -> FaultPlan {
    let r = i.wrapping_mul(0xA24B_AED4_963E_E407).rotate_left(31);
    let mut p = FaultPlan {
        loss_per_mille: 10 + (r % 30) as u32,
        dup_per_mille: 10 + ((r >> 8) % 30) as u32,
        kill_per_mille: if i % 2 == 0 { 1000 } else { 0 },
        restart_after_ns: if i % 3 == 0 { 0 } else { 250_000 },
        ..FaultPlan::partitioned(r)
    };
    p.partition_per_mille = 1000; // every plan carries a (healing) partition
    p.partition_min_ns = 30_000 + (r >> 16) % 60_000;
    p.gray_per_mille = if i % 2 == 1 { 1000 } else { 0 };
    p
}

/// Conservation with multiplicity across the full membership fault zoo
/// (docs/faults.md §8): healing partitions, gray stalls, kills, restarts —
/// every node explored at least once, every re-exploration accounted.
#[test]
fn membership_faults_conserve_with_multiplicity() {
    let p = presets::t_tiny();
    let gen = UtsGen::new(p.spec);
    let (expect, _) = seq_run(&gen);
    let mut evictions = 0u64;
    let mut rejoins = 0u64;
    for alg in Algorithm::paper_set() {
        for i in 0..6u64 {
            let mut cfg = RunConfig::new(alg, 4);
            cfg.faults = membership_plan(i);
            cfg.steal_timeout_ns = Some(30_000);
            let report = run_sim(MachineModel::kittyhawk(), 8, &gen, &cfg);
            assert_eq!(
                report.total_nodes - report.duplicate_nodes,
                expect,
                "{} plan {i} ({:?}) lost nodes: total={} dup={} deaths={} \
                 evictions={} rejoins={}",
                alg.label(),
                cfg.faults,
                report.total_nodes,
                report.duplicate_nodes,
                report.deaths,
                report.evictions,
                report.rejoins
            );
            evictions += report.evictions;
            rejoins += report.rejoins;
        }
    }
    assert!(evictions > 0, "no plan in the sweep ever drove an eviction");
    assert!(rejoins > 0, "no evicted or restarted rank ever rejoined");
}

/// A membership-faulted run — partition freezes, evictions, fence rejoins,
/// restarts — is bit-identical across the fast fiber conductor and the
/// reference OS-thread conductor.
#[test]
fn membership_runs_agree_across_conductors() {
    let p = presets::t_tiny();
    let gen = UtsGen::new(p.spec);
    for alg in Algorithm::paper_set() {
        let mut fast = RunConfig::new(alg, 2);
        fast.faults = membership_plan(1);
        fast.steal_timeout_ns = Some(30_000);
        let mut reference = fast;
        reference.sim_lookahead = false;
        let a = run_sim(MachineModel::kittyhawk(), 6, &gen, &fast);
        let b = run_sim(MachineModel::kittyhawk(), 6, &gen, &reference);
        assert_eq!(a.makespan_ns, b.makespan_ns, "{}", alg.label());
        assert_eq!(a.deaths, b.deaths, "{}", alg.label());
        assert_eq!(a.evictions, b.evictions, "{}", alg.label());
        assert_eq!(a.rejoins, b.rejoins, "{}", alg.label());
        assert_eq!(a.recovered_nodes, b.recovered_nodes, "{}", alg.label());
        assert_eq!(a.duplicate_nodes, b.duplicate_nodes, "{}", alg.label());
        for (t, (x, y)) in a.per_thread.iter().zip(&b.per_thread).enumerate() {
            assert_eq!(x.nodes, y.nodes, "{} thread {t}", alg.label());
            assert_eq!(x.died, y.died, "{} thread {t}", alg.label());
            assert_eq!(x.comm, y.comm, "{} thread {t}", alg.label());
        }
    }
}

/// A *faulted* run is itself deterministic and conductor-independent: the
/// fast fiber conductor and the reference OS-thread conductor agree on
/// every virtual result under an active fault plan.
#[test]
fn faulted_runs_agree_across_conductors() {
    let p = presets::t_tiny();
    let gen = UtsGen::new(p.spec);
    for alg in Algorithm::paper_set() {
        let mut fast = RunConfig::new(alg, 2);
        fast.faults = random_plan(5);
        fast.steal_timeout_ns = Some(30_000);
        let mut reference = fast;
        reference.sim_lookahead = false;
        let a = run_sim(MachineModel::kittyhawk(), 6, &gen, &fast);
        let b = run_sim(MachineModel::kittyhawk(), 6, &gen, &reference);
        assert_eq!(a.makespan_ns, b.makespan_ns, "{}", alg.label());
        for (t, (x, y)) in a.per_thread.iter().zip(&b.per_thread).enumerate() {
            assert_eq!(x.nodes, y.nodes, "{} thread {t}", alg.label());
            assert_eq!(x.comm, y.comm, "{} thread {t}", alg.label());
        }
    }
}
