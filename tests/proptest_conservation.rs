//! Property-based conservation: random subcritical trees × random
//! algorithm/threads/chunk configurations must always match the sequential
//! count. Complements the fixed-grid tests with shapes nobody hand-picked.

use pgas::MachineModel;
use proptest::prelude::*;
use uts_dlb::tree::TreeSpec;
use uts_dlb::worksteal::{run_sim, seq_run, Algorithm, RunConfig, UtsGen};

fn algorithm_strategy() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        Just(Algorithm::SharedMem),
        Just(Algorithm::Term),
        Just(Algorithm::TermRapdif),
        Just(Algorithm::DistMem),
        Just(Algorithm::MpiWs),
        Just(Algorithm::Hier),
        Just(Algorithm::Pushing),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 40,
    })]

    /// Conservation under random trees and configurations.
    #[test]
    fn random_tree_random_config_conserves(
        seed in 0u32..1000,
        b0 in 0u32..24,
        // Keep branching clearly subcritical so trees stay small: q ≤ 0.44.
        q_millis in 0u32..440,
        threads in 1usize..7,
        k in 1usize..9,
        alg in algorithm_strategy(),
    ) {
        let spec = TreeSpec::binomial(seed, b0, 2, q_millis as f64 / 1000.0);
        let gen = UtsGen::new(spec);
        let (expect, _) = seq_run(&gen);
        // Guard against a rare large tree slowing the suite.
        prop_assume!(expect < 200_000);
        let cfg = RunConfig::new(alg, k);
        let report = run_sim(MachineModel::smp(), threads, &gen, &cfg);
        prop_assert_eq!(report.total_nodes, expect);
    }

    /// Per-thread node counts always sum to the total, and no thread
    /// reports more steals-ok than chunks received.
    #[test]
    fn per_thread_accounting(
        seed in 0u32..100,
        threads in 2usize..6,
        alg in algorithm_strategy(),
    ) {
        let spec = TreeSpec::binomial(seed, 12, 2, 0.42);
        let gen = UtsGen::new(spec);
        let cfg = RunConfig::new(alg, 2);
        let report = run_sim(MachineModel::smp(), threads, &gen, &cfg);
        let sum: u64 = report.per_thread.iter().map(|t| t.nodes).sum();
        prop_assert_eq!(sum, report.total_nodes);
        for t in &report.per_thread {
            prop_assert!(t.chunks_stolen >= t.steals_ok);
        }
    }
}

fn paper_algorithm_strategy() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        Just(Algorithm::SharedMem),
        Just(Algorithm::Term),
        Just(Algorithm::TermRapdif),
        Just(Algorithm::DistMem),
        Just(Algorithm::MpiWs),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        max_shrink_iters: 40,
    })]

    /// Conservation **with multiplicity** under random crash-fault plans
    /// (docs/faults.md): with message loss, duplication, and rank death all
    /// drawn at random, every node of the tree is still explored at least
    /// once — `total - duplicates == expect` — and re-exploration stays
    /// bounded (each node at most a handful of times, not a runaway storm).
    #[test]
    fn random_crash_plan_conserves_with_multiplicity(
        seed in 0u64..1_000_000,
        tree_seed in 0u32..200,
        loss_pm in 0u32..60,
        dup_pm in 0u32..60,
        kill_pm in prop_oneof![Just(0u32), Just(350), Just(1000)],
        kill_min in 10_000u64..150_000,
        threads in 2usize..8,
        alg in paper_algorithm_strategy(),
        b0 in 16u32..64,
    ) {
        let spec = TreeSpec::binomial(tree_seed, b0, 2, 0.42);
        let gen = UtsGen::new(spec);
        let (expect, _) = seq_run(&gen);
        prop_assume!(expect < 100_000);
        let mut cfg = RunConfig::new(alg, 3);
        cfg.steal_timeout_ns = Some(30_000);
        cfg.faults = pgas::FaultPlan {
            loss_per_mille: loss_pm,
            dup_per_mille: dup_pm,
            kill_per_mille: kill_pm,
            kill_min_ns: kill_min,
            kill_span_ns: 300_000,
            ..pgas::FaultPlan::seeded(seed)
        };
        // Plans drawing all three rates at zero degenerate to the plain
        // seeded schedule, which the non-crash proptest already covers —
        // still worth keeping here as the boundary case.
        let report = run_sim(MachineModel::kittyhawk(), threads, &gen, &cfg);
        prop_assert_eq!(
            report.total_nodes - report.duplicate_nodes,
            expect,
            "{} lost nodes: total={} dup={} deaths={} plan={:?}",
            report.label, report.total_nodes, report.duplicate_nodes,
            report.deaths, cfg.faults
        );
        prop_assert!(report.deaths <= 1);
        prop_assert!(
            report.max_multiplicity <= 8,
            "node re-explored {} times under {:?}",
            report.max_multiplicity, cfg.faults
        );
        if !cfg.faults.crash_active() {
            prop_assert_eq!(report.duplicate_nodes, 0);
            prop_assert_eq!(report.recovered_nodes, 0);
        }
    }
}
