//! Property-based conservation: random subcritical trees × random
//! algorithm/threads/chunk configurations must always match the sequential
//! count. Complements the fixed-grid tests with shapes nobody hand-picked.

use pgas::MachineModel;
use proptest::prelude::*;
use uts_dlb::tree::TreeSpec;
use uts_dlb::worksteal::{run_sim, seq_run, Algorithm, RunConfig, UtsGen};

fn algorithm_strategy() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        Just(Algorithm::SharedMem),
        Just(Algorithm::Term),
        Just(Algorithm::TermRapdif),
        Just(Algorithm::DistMem),
        Just(Algorithm::MpiWs),
        Just(Algorithm::Hier),
        Just(Algorithm::Pushing),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 40,
    })]

    /// Conservation under random trees and configurations.
    #[test]
    fn random_tree_random_config_conserves(
        seed in 0u32..1000,
        b0 in 0u32..24,
        // Keep branching clearly subcritical so trees stay small: q ≤ 0.44.
        q_millis in 0u32..440,
        threads in 1usize..7,
        k in 1usize..9,
        alg in algorithm_strategy(),
    ) {
        let spec = TreeSpec::binomial(seed, b0, 2, q_millis as f64 / 1000.0);
        let gen = UtsGen::new(spec);
        let (expect, _) = seq_run(&gen);
        // Guard against a rare large tree slowing the suite.
        prop_assume!(expect < 200_000);
        let cfg = RunConfig::new(alg, k);
        let report = run_sim(MachineModel::smp(), threads, &gen, &cfg);
        prop_assert_eq!(report.total_nodes, expect);
    }

    /// Per-thread node counts always sum to the total, and no thread
    /// reports more steals-ok than chunks received.
    #[test]
    fn per_thread_accounting(
        seed in 0u32..100,
        threads in 2usize..6,
        alg in algorithm_strategy(),
    ) {
        let spec = TreeSpec::binomial(seed, 12, 2, 0.42);
        let gen = UtsGen::new(spec);
        let cfg = RunConfig::new(alg, 2);
        let report = run_sim(MachineModel::smp(), threads, &gen, &cfg);
        let sum: u64 = report.per_thread.iter().map(|t| t.nodes).sum();
        prop_assert_eq!(sum, report.total_nodes);
        for t in &report.per_thread {
            prop_assert!(t.chunks_stolen >= t.steals_ok);
        }
    }
}
