//! Property-based conservation: random subcritical trees × random
//! algorithm/threads/chunk configurations must always match the sequential
//! count. Complements the fixed-grid tests with shapes nobody hand-picked.

use pgas::sim::SimCluster;
use pgas::MachineModel;
use proptest::prelude::*;
use uts_dlb::tree::{GeoShape, TreeSpec};
use uts_dlb::worksteal::{
    run_sim, seq_run, vars, worker, Algorithm, DagGen, DagWorkload, RandomLayered, RunConfig,
    UtsGen,
};

fn algorithm_strategy() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        Just(Algorithm::SharedMem),
        Just(Algorithm::Term),
        Just(Algorithm::TermRapdif),
        Just(Algorithm::DistMem),
        Just(Algorithm::MpiWs),
        Just(Algorithm::Hier),
        Just(Algorithm::Pushing),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 40,
    })]

    /// Conservation under random trees and configurations.
    #[test]
    fn random_tree_random_config_conserves(
        seed in 0u32..1000,
        b0 in 0u32..24,
        // Keep branching clearly subcritical so trees stay small: q ≤ 0.44.
        q_millis in 0u32..440,
        threads in 1usize..7,
        k in 1usize..9,
        alg in algorithm_strategy(),
    ) {
        let spec = TreeSpec::binomial(seed, b0, 2, q_millis as f64 / 1000.0);
        let gen = UtsGen::new(spec);
        let (expect, _) = seq_run(&gen);
        // Guard against a rare large tree slowing the suite.
        prop_assume!(expect < 200_000);
        let cfg = RunConfig::new(alg, k);
        let report = run_sim(MachineModel::smp(), threads, &gen, &cfg);
        prop_assert_eq!(report.total_nodes, expect);
    }

    /// Per-thread node counts always sum to the total, and no thread
    /// reports more steals-ok than chunks received.
    #[test]
    fn per_thread_accounting(
        seed in 0u32..100,
        threads in 2usize..6,
        alg in algorithm_strategy(),
    ) {
        let spec = TreeSpec::binomial(seed, 12, 2, 0.42);
        let gen = UtsGen::new(spec);
        let cfg = RunConfig::new(alg, 2);
        let report = run_sim(MachineModel::smp(), threads, &gen, &cfg);
        let sum: u64 = report.per_thread.iter().map(|t| t.nodes).sum();
        prop_assert_eq!(sum, report.total_nodes);
        for t in &report.per_thread {
            prop_assert!(t.chunks_stolen >= t.steals_ok);
        }
    }
}

fn paper_algorithm_strategy() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        Just(Algorithm::SharedMem),
        Just(Algorithm::Term),
        Just(Algorithm::TermRapdif),
        Just(Algorithm::DistMem),
        Just(Algorithm::MpiWs),
    ]
}

/// Sample across the whole tree family — binomial, geometric (every depth
/// profile), hybrid — so crash coverage is not a binomial-only property.
/// Geometric/hybrid roots draw their child count, so some instances are
/// single-node trees; callers `prop_assume!` a minimum size.
fn tree_spec_strategy() -> impl Strategy<Value = TreeSpec> {
    let shape = prop_oneof![
        Just(GeoShape::Fixed),
        Just(GeoShape::Linear),
        Just(GeoShape::ExpDec),
        Just(GeoShape::Cyclic),
    ];
    prop_oneof![
        (0u32..200, 16u32..64)
            .prop_map(|(seed, b0)| TreeSpec::binomial(seed, b0, 2, 0.42)),
        (0u32..200, 150u32..300, 4u32..7, shape)
            .prop_map(|(seed, b0_c, gen_mx, s)| {
                TreeSpec::geometric(seed, f64::from(b0_c) / 100.0, gen_mx, s)
            }),
        (0u32..200, 200u32..350, 2u32..4)
            .prop_map(|(seed, b0_c, cutoff)| {
                TreeSpec::hybrid(seed, f64::from(b0_c) / 100.0, cutoff, 2, 0.42)
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        max_shrink_iters: 40,
    })]

    /// Conservation **with multiplicity** under random crash-fault plans
    /// (docs/faults.md): with message loss, duplication, and rank death all
    /// drawn at random, every node of the tree is still explored at least
    /// once — `total - duplicates == expect` — and re-exploration stays
    /// bounded (each node at most a handful of times, not a runaway storm).
    /// Trees are drawn from the whole family (binomial, geometric, hybrid).
    #[test]
    fn random_crash_plan_conserves_with_multiplicity(
        seed in 0u64..1_000_000,
        spec in tree_spec_strategy(),
        loss_pm in 0u32..60,
        dup_pm in 0u32..60,
        kill_pm in prop_oneof![Just(0u32), Just(350), Just(1000)],
        kill_min in 10_000u64..150_000,
        threads in 2usize..8,
        alg in paper_algorithm_strategy(),
    ) {
        let gen = UtsGen::new(spec);
        let (expect, _) = seq_run(&gen);
        // Geometric/hybrid roots can draw zero children; skip degenerate
        // instances (and the rare huge one) rather than scanning seeds.
        prop_assume!(expect > 10 && expect < 100_000);
        let mut cfg = RunConfig::new(alg, 3);
        cfg.steal_timeout_ns = Some(30_000);
        cfg.faults = pgas::FaultPlan {
            loss_per_mille: loss_pm,
            dup_per_mille: dup_pm,
            kill_per_mille: kill_pm,
            kill_min_ns: kill_min,
            kill_span_ns: 300_000,
            ..pgas::FaultPlan::seeded(seed)
        };
        // Plans drawing all three rates at zero degenerate to the plain
        // seeded schedule, which the non-crash proptest already covers —
        // still worth keeping here as the boundary case.
        let report = run_sim(MachineModel::kittyhawk(), threads, &gen, &cfg);
        prop_assert_eq!(
            report.total_nodes - report.duplicate_nodes,
            expect,
            "{} lost nodes: total={} dup={} deaths={} plan={:?}",
            report.label, report.total_nodes, report.duplicate_nodes,
            report.deaths, cfg.faults
        );
        prop_assert!(report.deaths <= 1);
        prop_assert!(
            report.max_multiplicity <= 8,
            "node re-explored {} times under {:?}",
            report.max_multiplicity, cfg.faults
        );
        if !cfg.faults.crash_active() {
            prop_assert_eq!(report.duplicate_nodes, 0);
            prop_assert_eq!(report.recovered_nodes, 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 40,
    })]

    /// DAG ready-queue invariants (docs/workloads.md) on random layered
    /// DAGs × random configurations: every task — including every sink —
    /// executes exactly once, and each count-up cell finishes *exactly* at
    /// its task's in-degree: every predecessor published exactly one
    /// decrement, none was lost, and no counter overshot (the fetch-add
    /// protocol never "goes negative" — an overshoot on a fault-free run
    /// would mean a double emission).
    #[test]
    fn dag_ready_counts_exact_and_all_sinks_complete(
        layers in 2u32..7,
        width in 2u32..10,
        edge_pm in 0u32..500,
        dag_seed in 0u64..1000,
        threads in 2usize..8,
        k in 1usize..5,
        alg in algorithm_strategy(),
    ) {
        let gen = DagWorkload::new(RandomLayered::new(layers, width, edge_pm, dag_seed));
        let cfg = RunConfig::new(alg, k);
        let cluster: SimCluster<u64> = SimCluster::new(
            MachineModel::smp(),
            threads,
            vars::space_config_for(&gen, threads),
        );
        let sim = cluster.run(|c| worker(c, &gen, &cfg));
        let total: u64 = sim.results.iter().map(|r| r.nodes).sum();
        prop_assert_eq!(total, gen.n_tasks(), "a task was lost or re-executed");
        for t in 0..gen.n_tasks() {
            let rank = (t % threads as u64) as usize;
            let slot = vars::DAG_BASE + (t / threads as u64) as usize;
            prop_assert_eq!(
                sim.final_scalar(rank, slot),
                i64::from(gen.dag().in_degree(t)),
                "task {}: count-up cell did not finish at its in-degree", t
            );
        }
    }
}
