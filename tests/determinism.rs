//! Simulator determinism: identical configuration ⇒ bit-identical outcome
//! (virtual makespan, per-thread node counts, steal counts, op statistics).
//! This is what makes the figure harness reproducible run-to-run.

use pgas::MachineModel;
use uts_dlb::tree::presets;
use uts_dlb::worksteal::{run_sim, Algorithm, RunConfig, UtsGen};

fn fingerprint(alg: Algorithm, seed: u64) -> (u64, Vec<u64>, u64, u64) {
    let p = presets::t_tiny();
    let gen = UtsGen::new(p.spec);
    let mut cfg = RunConfig::new(alg, 2);
    cfg.seed = seed;
    let r = run_sim(MachineModel::topsail(), 6, &gen, &cfg);
    (
        r.makespan_ns,
        r.per_thread.iter().map(|t| t.nodes).collect(),
        r.total_steals(),
        r.totals().comm.total_ops(),
    )
}

#[test]
fn identical_configs_identical_runs() {
    for alg in Algorithm::paper_set() {
        let a = fingerprint(alg, 42);
        let b = fingerprint(alg, 42);
        assert_eq!(a, b, "{} is nondeterministic", alg.label());
    }
}

#[test]
fn different_seeds_change_schedules() {
    // The probe order is seeded; different seeds should give observably
    // different executions (at least for one of the algorithms).
    let mut any_differ = false;
    for alg in [Algorithm::DistMem, Algorithm::Term, Algorithm::MpiWs] {
        if fingerprint(alg, 1) != fingerprint(alg, 2) {
            any_differ = true;
        }
    }
    assert!(any_differ, "seeds appear to have no effect on scheduling");
}

#[test]
fn thread_count_changes_makespan() {
    let p = presets::t_s();
    let gen = UtsGen::new(p.spec);
    let cfg = RunConfig::new(Algorithm::DistMem, 4);
    let one = run_sim(MachineModel::topsail(), 1, &gen, &cfg);
    let eight = run_sim(MachineModel::topsail(), 8, &gen, &cfg);
    assert_eq!(one.total_nodes, eight.total_nodes);
    assert!(
        eight.makespan_ns * 2 < one.makespan_ns,
        "8 threads should be at least 2x faster in virtual time ({} vs {})",
        eight.makespan_ns,
        one.makespan_ns
    );
}
