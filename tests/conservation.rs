//! The golden invariant, across the whole matrix: every algorithm, backend,
//! tree shape, thread count, and chunk size must count every node exactly
//! once. Any termination-detection or steal-protocol bug shows up here as a
//! lost/duplicated node or a hang.

use pgas::MachineModel;
use uts_dlb::tree::{presets, TreeSpec};
use uts_dlb::worksteal::{run_sim, seq_run, Algorithm, RunConfig, UtsGen};

fn check_sim(machine: &MachineModel, spec: TreeSpec, threads: usize, k: usize, alg: Algorithm) {
    let gen = UtsGen::new(spec);
    let (expect, _) = seq_run(&gen);
    let cfg = RunConfig::new(alg, k);
    let report = run_sim(machine.clone(), threads, &gen, &cfg);
    assert_eq!(
        report.total_nodes,
        expect,
        "{} p={threads} k={k} {spec:?}",
        alg.label()
    );
}

#[test]
fn paper_algorithms_tiny_tree_thread_grid() {
    let spec = presets::t_tiny().spec;
    let m = MachineModel::smp();
    for alg in Algorithm::paper_set() {
        for threads in [1, 2, 4, 9] {
            check_sim(&m, spec, threads, 2, alg);
        }
    }
}

#[test]
fn extensions_tiny_tree_thread_grid() {
    let spec = presets::t_tiny().spec;
    let m = MachineModel::smp();
    for alg in [Algorithm::Hier, Algorithm::Pushing] {
        for threads in [1, 3, 8] {
            check_sim(&m, spec, threads, 2, alg);
        }
    }
}

#[test]
fn chunk_size_grid() {
    let spec = presets::t_tiny().spec;
    let m = MachineModel::kittyhawk();
    for alg in [Algorithm::DistMem, Algorithm::SharedMem, Algorithm::MpiWs] {
        for k in [1, 2, 7, 32] {
            check_sim(&m, spec, 4, k, alg);
        }
    }
}

#[test]
fn high_latency_machine_models() {
    let spec = presets::t_tiny().spec;
    for m in [
        MachineModel::kittyhawk(),
        MachineModel::topsail(),
        MachineModel::altix(),
    ] {
        for alg in [Algorithm::DistMem, Algorithm::Term, Algorithm::MpiWs] {
            check_sim(&m, spec, 6, 2, alg);
        }
    }
}

#[test]
fn degenerate_trees() {
    let m = MachineModel::smp();
    // Root-only, star, and a two-child root: work may be scarcer than
    // threads; termination must still be detected.
    for spec in [
        TreeSpec::binomial(1, 0, 2, 0.9),
        TreeSpec::binomial(2, 6, 2, 0.0),
        TreeSpec::binomial(4, 2, 2, 0.45),
    ] {
        for alg in Algorithm::paper_set() {
            check_sim(&m, spec, 5, 2, alg);
        }
    }
}

#[test]
fn more_threads_than_nodes() {
    // 13-node star on 16 threads: most threads never get work at all.
    let spec = TreeSpec::binomial(9, 12, 2, 0.0);
    let m = MachineModel::smp();
    for alg in Algorithm::all() {
        check_sim(&m, spec, 16, 1, alg);
    }
}

/// Mid-size tree, release profile: a bigger run (~46k nodes) exercising
/// deep stacks, compaction, and multi-chunk grants.
#[test]
fn t_s_distmem_and_rapdif() {
    let p = presets::t_s();
    let m = MachineModel::kittyhawk();
    for alg in [Algorithm::DistMem, Algorithm::TermRapdif] {
        check_sim(&m, p.spec, 8, 4, alg);
    }
}
