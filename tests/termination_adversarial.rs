//! Adversarial termination schedules: many random (seed, threads, chunk)
//! configurations on tiny trees, where termination detection is the entire
//! run (work runs out almost immediately and the detectors race with
//! late-arriving steals). Complements `examples/termination_stress.rs`,
//! which sweeps a larger grid in release mode.

use pgas::{FaultPlan, MachineModel};
use uts_dlb::tree::TreeSpec;
use uts_dlb::worksteal::{run_sim, seq_run, Algorithm, RunConfig, UtsGen};

fn stress(alg: Algorithm, machine: &MachineModel, cases: u64) {
    for i in 0..cases {
        // Vary everything deterministically from i.
        let tree_seed = (i * 7 + 1) as u32;
        let b0 = (i % 5) as u32 * 3; // includes 0: root-only trees
        let q = 0.05 + 0.4 * ((i % 7) as f64 / 7.0);
        let threads = 2 + (i % 6) as usize;
        let k = 1 + (i % 3) as usize;
        let spec = TreeSpec::binomial(tree_seed, b0, 2, q);
        let gen = UtsGen::new(spec);
        let (expect, _) = seq_run(&gen);
        let mut cfg = RunConfig::new(alg, k);
        cfg.seed = i.wrapping_mul(0x9E37_79B9);
        let report = run_sim(machine.clone(), threads, &gen, &cfg);
        assert_eq!(
            report.total_nodes,
            expect,
            "{} case {i}: seed={tree_seed} b0={b0} q={q:.2} p={threads} k={k}",
            alg.label()
        );
    }
}

#[test]
fn distmem_adversarial() {
    stress(Algorithm::DistMem, &MachineModel::kittyhawk(), 20);
}

#[test]
fn term_adversarial() {
    stress(Algorithm::Term, &MachineModel::kittyhawk(), 20);
}

#[test]
fn sharedmem_adversarial() {
    stress(Algorithm::SharedMem, &MachineModel::smp(), 15);
}

#[test]
fn mpi_ws_adversarial() {
    stress(Algorithm::MpiWs, &MachineModel::kittyhawk(), 20);
}

#[test]
fn pushing_adversarial() {
    stress(Algorithm::Pushing, &MachineModel::smp(), 15);
}

// ---------------------------------------------------------------------------
// Fault-schedule cases (docs/faults.md): the same adversarial grid, but with
// a deterministic fault plan aimed at a specific protocol weak point. Every
// run must still terminate (the test completing *is* the termination check —
// watchdogs panic on livelock in debug builds) with the exact sequential
// node count.

fn fault_stress(alg: Algorithm, faults: FaultPlan, timeout_ns: Option<u64>, cases: u64) -> u64 {
    let machine = MachineModel::kittyhawk();
    let mut hardening_events = 0u64;
    for i in 0..cases {
        let tree_seed = (i * 7 + 1) as u32;
        let b0 = (i % 5) as u32 * 3;
        let q = 0.05 + 0.4 * ((i % 7) as f64 / 7.0);
        let threads = 2 + (i % 6) as usize;
        let k = 1 + (i % 3) as usize;
        let spec = TreeSpec::binomial(tree_seed, b0, 2, q);
        let gen = UtsGen::new(spec);
        let (expect, _) = seq_run(&gen);
        let mut cfg = RunConfig::new(alg, k);
        cfg.seed = i.wrapping_mul(0x9E37_79B9);
        cfg.faults = FaultPlan {
            seed: faults.seed.wrapping_add(i),
            ..faults
        };
        cfg.steal_timeout_ns = timeout_ns;
        let report = run_sim(machine.clone(), threads, &gen, &cfg);
        assert_eq!(
            report.total_nodes,
            expect,
            "{} fault case {i}: seed={tree_seed} b0={b0} q={q:.2} p={threads} k={k}",
            alg.label()
        );
        let t = report.totals();
        hardening_events += t.steal_timeouts + t.retracts_won + t.retracts_lost;
    }
    hardening_events
}

/// A victim stalls mid-steal: stall-heavy plan, thief timeout armed. The
/// distmem thief must retract and re-probe rather than wait forever, and the
/// retract race must never lose or duplicate the disputed chunk.
#[test]
fn stalled_victim_mid_steal_distmem() {
    let plan = FaultPlan {
        stall_per_mille: 500,
        window_ns: 25_000,
        spike_per_mille: 0,
        straggler_per_mille: 0,
        ..FaultPlan::seeded(0xBAD_57A11)
    };
    let fired = fault_stress(Algorithm::DistMem, plan, Some(10_000), 20);
    assert!(
        fired > 0,
        "no timeout/retract fired — the stall schedule never bit"
    );
}

/// Same stall schedule against the two-sided protocol: the mpi-ws thief
/// times out, re-probes, and later drains the stalled victim's response so
/// the token ring still balances.
#[test]
fn stalled_victim_mid_steal_mpi_ws() {
    let plan = FaultPlan {
        stall_per_mille: 500,
        window_ns: 25_000,
        spike_per_mille: 0,
        straggler_per_mille: 0,
        ..FaultPlan::seeded(0xBAD_57A11)
    };
    let fired = fault_stress(Algorithm::MpiWs, plan, Some(10_000), 20);
    assert!(
        fired > 0,
        "no timeout fired — the stall schedule never bit"
    );
}

/// A permanent straggler (16x slower) ends up holding the last chunks while
/// everyone else races into the termination detector; the detectors must
/// not declare victory over its head.
#[test]
fn straggler_holding_the_last_chunk() {
    let plan = FaultPlan {
        straggler_per_mille: 350,
        straggler_mult_x16: 256, // 16x slowdown
        stall_per_mille: 0,
        spike_per_mille: 0,
        ..FaultPlan::seeded(0x510_C0DE)
    };
    for alg in [Algorithm::Term, Algorithm::TermRapdif, Algorithm::DistMem] {
        fault_stress(alg, plan, Some(50_000), 12);
    }
}

/// Latency spikes (32x, dense windows) landing during the termination probe
/// cycle: probes and barrier traffic get arbitrarily delayed, which must
/// stretch — never corrupt — the detection protocols.
#[test]
fn latency_spike_during_termination_probe() {
    let plan = FaultPlan {
        spike_per_mille: 400,
        spike_mult_x16: 512, // 32x latency
        window_ns: 50_000,
        stall_per_mille: 0,
        straggler_per_mille: 0,
        ..FaultPlan::seeded(0x5B1CE)
    };
    for alg in [Algorithm::SharedMem, Algorithm::Term, Algorithm::MpiWs] {
        fault_stress(alg, plan, Some(50_000), 12);
    }
}

/// Fenced-membership regression (docs/faults.md §8): an *un-healed* network
/// partition (`partition_dur_ns = 0`, the forever sentinel) freezes a
/// minority of ranks for the rest of the run. They never run a deathbed,
/// never spill, never cooperate — before quorum eviction this wedged the
/// quiescence scan whenever a frozen rank was still on the books as
/// working. Now the live majority votes the silent ranks out after
/// `EVICT_TIMEOUT_NS` and terminates *without* their cooperation; each
/// frozen zombie self-drains whatever it still holds after its
/// (post-termination) thaw, so conservation with multiplicity holds even
/// though termination was declared over its head.
#[test]
fn unhealed_partition_terminates_via_quorum_eviction() {
    let p = uts_tree::presets::t_tiny();
    let gen = UtsGen::new(p.spec);
    let (expect, _) = seq_run(&gen);
    let mut evictions = 0u64;
    for alg in [
        Algorithm::Term,
        Algorithm::DistMem,
        Algorithm::MpiWs,
        Algorithm::Pushing,
    ] {
        for i in 0..4u64 {
            let mut cfg = RunConfig::new(alg, 2);
            cfg.faults = FaultPlan {
                partition_per_mille: 1000, // every seed carries a partition
                partition_min_ns: 20_000,
                partition_span_ns: 150_000,
                partition_dur_ns: 0, // never heals
                kill_per_mille: 0,   // isolate the partition: no deaths
                ..FaultPlan::partitioned(0x9A27_17E5u64.wrapping_add(i))
            };
            cfg.faults.gray_per_mille = 0;
            cfg.steal_timeout_ns = Some(30_000);
            let report = run_sim(MachineModel::kittyhawk(), 6, &gen, &cfg);
            assert_eq!(
                report.total_nodes - report.duplicate_nodes,
                expect,
                "{} case {i}: lost nodes across an un-healed partition \
                 (total={} dup={} evictions={})",
                alg.label(),
                report.total_nodes,
                report.duplicate_nodes,
                report.evictions
            );
            assert_eq!(report.deaths, 0, "{} case {i}: nobody dies", alg.label());
            evictions += report.evictions;
        }
    }
    assert!(
        evictions > 0,
        "no quorum eviction fired across the sweep — the un-healed \
         partition never blocked termination"
    );
}

/// Service mode, the nastiest interleaving from `docs/service.md`: a steal
/// grant issued for epoch-`e` work is stalled in flight past the thief's
/// timeout, and lands (via `absorb_pending`) while later epochs are already
/// being injected and even completed — a grant *crossing an epoch boundary*.
/// The per-epoch deficit cells must keep the in-flight chunk on epoch `e`'s
/// books (publish-before-migration), so the scanner can neither declare `e`
/// done over the grant's head nor miscredit its nodes to a newer epoch.
/// `run_service_sim` asserts per-epoch conservation and completion
/// internally; here we additionally require that the sweep really produced
/// (a) timed-out steals whose grants arrived late and (b) epochs whose
/// lifetimes overlapped.
#[test]
fn late_grant_crossing_epoch_boundary_service() {
    let arrivals = pgas::ArrivalSpec::poisson(19, 12, 50_000.0);
    let gen = UtsGen::new(TreeSpec::binomial(31, 6, 2, 0.42));
    let mut late_grants = 0u64;
    let mut overlaps = 0u64;
    for i in 0..10u64 {
        let mut cfg = RunConfig::new(Algorithm::MpiWs, 1);
        cfg.faults = FaultPlan {
            stall_per_mille: 500,
            window_ns: 25_000,
            spike_per_mille: 0,
            straggler_per_mille: 0,
            ..FaultPlan::seeded(0xE60C4u64.wrapping_add(i))
        };
        cfg.steal_timeout_ns = Some(10_000);
        let report =
            uts_dlb::worksteal::run_service_sim(MachineModel::kittyhawk(), 6, &gen, &cfg, &arrivals);
        late_grants += report.totals().steal_timeouts;
        let svc = report.service.expect("service report");
        assert_eq!(svc.per_request.len(), 12, "case {i}: lost a request");
        // Epoch e still running when e+1 was injected?
        for w in svc.per_request.windows(2) {
            if w[1].injected_ns < w[0].completed_ns {
                overlaps += 1;
            }
        }
    }
    assert!(late_grants > 0, "no steal ever timed out — grants never late");
    assert!(overlaps > 0, "epochs never overlapped — boundary never crossed");
}
