//! Adversarial termination schedules: many random (seed, threads, chunk)
//! configurations on tiny trees, where termination detection is the entire
//! run (work runs out almost immediately and the detectors race with
//! late-arriving steals). Complements `examples/termination_stress.rs`,
//! which sweeps a larger grid in release mode.

use pgas::MachineModel;
use uts_dlb::tree::TreeSpec;
use uts_dlb::worksteal::{run_sim, seq_run, Algorithm, RunConfig, UtsGen};

fn stress(alg: Algorithm, machine: &MachineModel, cases: u64) {
    for i in 0..cases {
        // Vary everything deterministically from i.
        let tree_seed = (i * 7 + 1) as u32;
        let b0 = (i % 5) as u32 * 3; // includes 0: root-only trees
        let q = 0.05 + 0.4 * ((i % 7) as f64 / 7.0);
        let threads = 2 + (i % 6) as usize;
        let k = 1 + (i % 3) as usize;
        let spec = TreeSpec::binomial(tree_seed, b0, 2, q);
        let gen = UtsGen::new(spec);
        let (expect, _) = seq_run(&gen);
        let mut cfg = RunConfig::new(alg, k);
        cfg.seed = i.wrapping_mul(0x9E37_79B9);
        let report = run_sim(machine.clone(), threads, &gen, &cfg);
        assert_eq!(
            report.total_nodes,
            expect,
            "{} case {i}: seed={tree_seed} b0={b0} q={q:.2} p={threads} k={k}",
            alg.label()
        );
    }
}

#[test]
fn distmem_adversarial() {
    stress(Algorithm::DistMem, &MachineModel::kittyhawk(), 20);
}

#[test]
fn term_adversarial() {
    stress(Algorithm::Term, &MachineModel::kittyhawk(), 20);
}

#[test]
fn sharedmem_adversarial() {
    stress(Algorithm::SharedMem, &MachineModel::smp(), 15);
}

#[test]
fn mpi_ws_adversarial() {
    stress(Algorithm::MpiWs, &MachineModel::kittyhawk(), 20);
}

#[test]
fn pushing_adversarial() {
    stress(Algorithm::Pushing, &MachineModel::smp(), 15);
}
