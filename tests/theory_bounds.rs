//! Steal-bound and conservation theory checks (`worksteal::theory`) as
//! live assertions over real runs: every workload family — binomial,
//! geometric, and hybrid trees, plus all three DAG families — must satisfy
//! `successful_steals ≤ factor · p · D` and exact conservation on
//! fault-free runs, and the asserter itself must demonstrably trip when
//! handed an impossible bound (factor 0 on a run that stole at least once).

use pgas::MachineModel;
use uts_dlb::worksteal::theory::{self, DEFAULT_STEAL_FACTOR};
use uts_dlb::worksteal::{
    run_sim, seq_run, Algorithm, DagWorkload, ForkJoin, RandomLayered, RunConfig, TaskGen,
    TheoryViolation, UtsGen, Wavefront,
};
use uts_tree::presets;
use uts_tree::spec::{GeoShape, TreeSpec};

/// Run `gen` on a few (algorithm, threads) cells and theory-check each.
fn check_workload<G: TaskGen>(gen: &G, expected: u64, depth: u64, what: &str) {
    assert!(depth > 0, "{what}: missing critical-path length");
    for alg in [Algorithm::Term, Algorithm::DistMem, Algorithm::MpiWs] {
        for threads in [2usize, 8] {
            let cfg = RunConfig::new(alg, 2);
            let report = run_sim(MachineModel::kittyhawk(), threads, gen, &cfg);
            let summary =
                theory::check_run(&report, expected, depth, DEFAULT_STEAL_FACTOR, false)
                    .unwrap_or_else(|e| {
                        panic!("{what}/{}/p={threads}: {e}", alg.label())
                    });
            assert_eq!(summary.expected, expected);
            assert!(
                summary.steal_attempts >= summary.successful_steals,
                "{what}: attempts can never undercount successes"
            );
        }
    }
}

#[test]
fn tree_families_satisfy_steal_bound_and_conservation() {
    // Binomial: preset with a frozen depth.
    let p = presets::t_tiny();
    let gen = UtsGen::new(p.spec);
    check_workload(
        &gen,
        p.expected.nodes,
        u64::from(p.expected.max_depth),
        "binomial",
    );

    // Geometric and hybrid: depth measured by host traversal. Scan past
    // degenerate seeds (a geometric root can draw zero children).
    for (family, mut spec) in [
        ("geometric", TreeSpec::geometric(1, 2.0, 6, GeoShape::Fixed)),
        ("hybrid", TreeSpec::hybrid(4, 3.0, 3, 2, 0.40)),
    ] {
        let expect = loop {
            let (expect, _) = seq_run(&UtsGen::new(spec));
            if expect > 10 {
                break expect;
            }
            spec.seed += 100;
        };
        let gen = UtsGen::new(spec);
        check_workload(&gen, expect, theory::tree_depth(&gen), family);
    }
}

#[test]
fn dag_families_satisfy_steal_bound_and_conservation() {
    let fj = DagWorkload::new(ForkJoin {
        levels: 6,
        width: 10,
        seed: 21,
    });
    let wf = DagWorkload::new(Wavefront {
        rows: 10,
        cols: 10,
        seed: 22,
    });
    let rl = DagWorkload::new(RandomLayered::new(7, 9, 300, 23));
    check_workload(&fj, fj.n_tasks(), fj.critical_path_len().unwrap(), "fork-join");
    check_workload(&wf, wf.n_tasks(), wf.critical_path_len().unwrap(), "wavefront");
    check_workload(&rl, rl.n_tasks(), rl.critical_path_len().unwrap(), "layered");
}

/// The deliberately-broken bound: a zero slack factor makes the bound 0,
/// so any run with at least one successful steal must trip the asserter —
/// proof the theory harness actually rejects, rather than vacuously
/// accepting every row.
#[test]
fn broken_bound_trips_the_asserter() {
    let p = presets::t_tiny();
    let gen = UtsGen::new(p.spec);
    let cfg = RunConfig::new(Algorithm::DistMem, 2);
    let report = run_sim(MachineModel::kittyhawk(), 8, &gen, &cfg);
    assert!(
        report.successful_steals > 0,
        "need a run that actually stole to demonstrate the trip"
    );
    let depth = u64::from(p.expected.max_depth);
    let err = theory::check_run(&report, p.expected.nodes, depth, 0.0, false)
        .expect_err("factor 0 must reject any stealing run");
    match err {
        TheoryViolation::StealBound { steals, bound, .. } => {
            assert_eq!(bound, 0);
            assert_eq!(steals, report.successful_steals);
        }
        other => panic!("expected a steal-bound violation, got: {other}"),
    }
    // The same run passes with the default factor: the trip above came from
    // the impossible bound, not from the run.
    theory::check_run(&report, p.expected.nodes, depth, DEFAULT_STEAL_FACTOR, false)
        .expect("default factor accepts the run");
}

/// Conservation violations trip too: lying about the expected size by one
/// task must be rejected for every workload shape.
#[test]
fn wrong_expected_size_trips_conservation() {
    let wf = DagWorkload::new(Wavefront {
        rows: 6,
        cols: 6,
        seed: 9,
    });
    let cfg = RunConfig::new(Algorithm::Term, 2);
    let report = run_sim(MachineModel::kittyhawk(), 4, &wf, &cfg);
    let depth = wf.critical_path_len().unwrap();
    let err = theory::check_run(&report, wf.n_tasks() + 1, depth, DEFAULT_STEAL_FACTOR, false)
        .expect_err("off-by-one expected size must trip");
    assert!(matches!(err, TheoryViolation::Conservation { .. }), "{err}");
}
