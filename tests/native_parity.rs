//! Native-backend (real OS threads, real atomics) integration: the same
//! worker code must behave identically on real shared memory — the paper's
//! shared-memory setting.

use pgas::MachineModel;
use uts_dlb::tree::presets;
use uts_dlb::worksteal::{run_native, run_sim, Algorithm, RunConfig, UtsGen};

#[test]
fn all_algorithms_conserve_natively() {
    let p = presets::t_tiny();
    let gen = UtsGen::new(p.spec);
    for alg in Algorithm::all() {
        for threads in [1usize, 2, 4] {
            let cfg = RunConfig::new(alg, 2);
            let report = run_native(MachineModel::smp(), threads, &gen, &cfg)
                .expect("fault-free config runs natively");
            assert_eq!(
                report.total_nodes,
                p.expected.nodes,
                "{} p={threads} native",
                alg.label()
            );
        }
    }
}

#[test]
fn native_mid_size_distmem() {
    let p = presets::t_s();
    let gen = UtsGen::new(p.spec);
    let cfg = RunConfig::new(Algorithm::DistMem, 8);
    let report = run_native(MachineModel::smp(), 4, &gen, &cfg)
        .expect("fault-free config runs natively");
    assert_eq!(report.total_nodes, p.expected.nodes);
    // Wall-clock makespan and per-thread clocks must be sane.
    assert!(report.makespan_ns > 0);
    assert_eq!(report.per_thread.len(), 4);
}

/// A sim report and a native report agree on the *logical* outcome (total
/// nodes); their timing domains differ (virtual vs wall).
#[test]
fn sim_native_logical_agreement() {
    let p = presets::t_tiny();
    let gen = UtsGen::new(p.spec);
    let cfg = RunConfig::new(Algorithm::Term, 2);
    let sim = run_sim(MachineModel::smp(), 3, &gen, &cfg);
    let native = run_native(MachineModel::smp(), 3, &gen, &cfg)
        .expect("fault-free config runs natively");
    assert_eq!(sim.total_nodes, native.total_nodes);
}
