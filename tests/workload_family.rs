//! The load balancers must work on the *whole* UTS family, not just the
//! paper's binomial trees: geometric (all four depth profiles) and hybrid
//! shapes too, since the child-count law is opaque to the algorithms.

use pgas::MachineModel;
use uts_dlb::tree::{GeoShape, TreeSpec};
use uts_dlb::worksteal::{run_sim, seq_run, Algorithm, RunConfig, UtsGen};

/// Geometric roots draw their child count too: a given seed can yield a
/// single-node tree (probability 1/(1+b0)). Scan forward from the given
/// seed to the first non-degenerate instance before testing.
fn check(mut spec: TreeSpec, alg: Algorithm, threads: usize) {
    let expect = loop {
        let (expect, _) = seq_run(&UtsGen::new(spec));
        if expect > 10 {
            break expect;
        }
        spec.seed += 100;
    };
    let gen = UtsGen::new(spec);
    let report = run_sim(MachineModel::smp(), threads, &gen, &RunConfig::new(alg, 4));
    assert_eq!(report.total_nodes, expect, "{} on {spec:?}", alg.label());
}

#[test]
fn geometric_fixed() {
    check(
        TreeSpec::geometric(1, 2.0, 8, GeoShape::Fixed),
        Algorithm::DistMem,
        4,
    );
}

#[test]
fn geometric_linear() {
    check(
        TreeSpec::geometric(2, 4.0, 10, GeoShape::Linear),
        Algorithm::TermRapdif,
        4,
    );
}

#[test]
fn geometric_expdec() {
    check(
        TreeSpec::geometric(3, 6.0, 12, GeoShape::ExpDec),
        Algorithm::MpiWs,
        3,
    );
}

#[test]
fn geometric_cyclic() {
    check(
        TreeSpec::geometric(5, 2.0, 4, GeoShape::Cyclic),
        Algorithm::Term,
        4,
    );
}

#[test]
fn hybrid_tree_all_paper_algorithms() {
    let spec = TreeSpec::hybrid(4, 3.0, 3, 2, 0.40);
    for alg in Algorithm::paper_set() {
        check(spec, alg, 5);
    }
}
