//! Workload-side integration: the preset trees really have the UTS
//! properties the paper's evaluation depends on (frozen exact sizes,
//! extreme imbalance under the root, scale-free subtree distribution).

use proptest::prelude::*;
use uts_dlb::tree::stats::measure_imbalance;
use uts_dlb::tree::{presets, seq::dfs_count, seq::dfs_count_subtree, TreeSpec};

#[test]
fn t_s_frozen_size_and_imbalance() {
    let p = presets::t_s();
    let r = dfs_count(&p.spec);
    assert_eq!(r, p.expected, "T-S drifted");
    let imb = measure_imbalance(&p.spec);
    assert_eq!(imb.total, p.expected.nodes);
    // The evaluation property: heavy concentration of work under few
    // children (paper: >99.9% under one of 2000; scaled trees are a bit
    // tamer but must still be extreme).
    assert!(
        imb.largest_fraction() > 0.30,
        "largest root subtree holds only {:.1}% of the work",
        100.0 * imb.largest_fraction()
    );
    assert!(
        imb.subtrees_for_fraction(0.90) <= 8,
        "work is too evenly spread: {} subtrees needed for 90%",
        imb.subtrees_for_fraction(0.90)
    );
    assert!(imb.coefficient_of_variation() > 2.0);
}

#[test]
fn tiny_preset_frozen() {
    let p = presets::t_tiny();
    assert_eq!(dfs_count(&p.spec), p.expected);
}

/// Scale-free property: the subtree-size law is the same at every node, so
/// deep subtrees exhibit the same kind of variation as the root's children.
#[test]
fn subtree_size_variation_is_scale_free() {
    let spec = presets::t_s().spec;
    // Find an internal node a few levels down and measure ITS children.
    let mut node = spec.root();
    loop {
        let mut kids = Vec::new();
        spec.expand_into(&node, &mut kids);
        match kids.iter().find(|k| spec.num_children(k) > 0) {
            Some(k) if k.height < 4 => node = *k,
            _ => break,
        }
    }
    let mut kids = Vec::new();
    spec.expand_into(&node, &mut kids);
    if kids.len() >= 2 {
        let sizes: Vec<u64> = kids
            .iter()
            .map(|k| dfs_count_subtree(&spec, *k))
            .collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        // Not a strict law per-node, but with q ≈ 0.498 two sibling
        // subtrees are almost never comparable in size.
        assert!(max >= min, "degenerate");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Node/leaf/edge arithmetic holds for arbitrary subcritical binomial
    /// trees: every non-root node has exactly one parent.
    #[test]
    fn binomial_edge_identity(seed in 0u32..2000, b0 in 1u32..40, q_millis in 0u32..460) {
        let spec = TreeSpec::binomial(seed, b0, 2, q_millis as f64 / 1000.0);
        let r = dfs_count(&spec);
        let root_children = spec.num_children(&spec.root()) as u64;
        let internal_nonroot = r.nodes - r.leaves - 1 + u64::from(root_children == 0);
        // Edges from the root + edges from internal non-root nodes (2 each)
        // must equal nodes - 1: every non-root node has exactly one parent.
        prop_assert_eq!(root_children + 2 * internal_nonroot, r.nodes - 1);
    }

    /// Determinism of tree generation.
    #[test]
    fn generation_deterministic(seed in 0u32..5000) {
        let spec = TreeSpec::binomial(seed, 6, 2, 0.4);
        prop_assert_eq!(dfs_count(&spec), dfs_count(&spec));
    }
}
