//! Conductor equivalence: every conductor must be invisible in every
//! modelled quantity.
//!
//! The simulator has three conductors (see `docs/conductor.md`): the
//! **reference** OS-thread/baton loop, the single-core **fiber** loop with
//! the lookahead fast path, and the **parallel** ticketed
//! sequencer/worker/committer pipeline. For each algorithm, workload, and
//! thread count, the same run is executed under all three and the reports
//! are required to be *bit-identical*: virtual makespan, every per-thread
//! virtual clock, every per-thread worker result (nodes, steals, releases,
//! state times, comm counters), and the final memory image. Only the
//! conductors' own harness counters may differ — that is the whole point of
//! keeping them out of `CommStats`.
//!
//! The matrix covers batch (UTS trees), service mode, crash faults,
//! membership faults, all three DAG families, and a conflict-storm stress
//! case built to defeat the parallel conductor's speculative reads and force
//! its serial-replay fallback.

use pgas::sim::{SimCluster, SimReport};
use pgas::{ArrivalSpec, Comm, FaultPlan, MachineModel};
use uts_tree::presets::{self, Preset};
use uts_tree::TreeSpec;
use worksteal::{
    run_service_sim, run_sim, vars, worker, Algorithm, DagWorkload, ForkJoin, RandomLayered,
    RunConfig, RunReport, TaskGen, ThreadResult, UtsGen, Wavefront,
};

/// Which conductor drives the run. `Parallel` carries the worker count;
/// every mode pins the choice explicitly so the matrix stays a genuine
/// 3-way comparison even when `UTS_SIM_WORKERS` is set in the environment.
#[derive(Clone, Copy, Debug)]
enum Mode {
    Reference,
    Fiber,
    Parallel(usize),
}

impl Mode {
    fn cluster<T: pgas::comm::Item>(self, c: SimCluster<T>) -> SimCluster<T> {
        match self {
            Mode::Reference => c.with_lookahead(false).with_workers(0),
            Mode::Fiber => c.with_lookahead(true).with_workers(0),
            Mode::Parallel(w) => c.with_lookahead(true).with_workers(w),
        }
    }

    /// The same selection through the `RunConfig` knobs, for runs that go
    /// through the engine/service entry points. `Fiber` leaves
    /// `sim_workers = 0`, which inherits `UTS_SIM_WORKERS` — under the CI
    /// pass that sets it, the "fiber" leg simply becomes a second parallel
    /// configuration, which must *still* be bit-identical.
    fn config(self, mut cfg: RunConfig) -> RunConfig {
        match self {
            Mode::Reference => cfg.sim_lookahead = false,
            Mode::Fiber => cfg.sim_lookahead = true,
            Mode::Parallel(w) => {
                cfg.sim_lookahead = true;
                cfg.sim_workers = w;
            }
        }
        cfg
    }
}

fn assert_sim_identical(
    a: &SimReport<ThreadResult>,
    b: &SimReport<ThreadResult>,
    label: &str,
) {
    assert_eq!(a.makespan_ns, b.makespan_ns, "{label}: virtual makespan diverged");
    assert_eq!(a.clocks, b.clocks, "{label}: per-thread clocks diverged");
    assert_eq!(a.scalars, b.scalars, "{label}: final memory diverged");
    assert_eq!(a.stats, b.stats, "{label}: comm stats diverged");
    for (tid, (x, y)) in a.results.iter().zip(&b.results).enumerate() {
        assert_eq!(x, y, "{label}: thread {tid} worker result diverged");
    }
    assert_eq!(
        a.total_conductor().total_ops(),
        b.total_conductor().total_ops(),
        "{label}: operation streams differ in length"
    );
}

fn run_mode(preset: &Preset, alg: Algorithm, threads: usize, mode: Mode) -> SimReport<ThreadResult> {
    let gen = UtsGen::new(preset.spec);
    let cfg = RunConfig::new(alg, 4);
    let cluster: SimCluster<<UtsGen as TaskGen>::Task> = mode.cluster(SimCluster::new(
        MachineModel::kittyhawk(),
        threads,
        vars::space_config(),
    ));
    cluster.run(move |c| worker(c, &gen, &cfg))
}

fn assert_equivalent(preset: &Preset, alg: Algorithm, threads: usize) {
    let reference = run_mode(preset, alg, threads, Mode::Reference);
    let fiber = run_mode(preset, alg, threads, Mode::Fiber);
    let parallel = run_mode(preset, alg, threads, Mode::Parallel(3));
    let label = format!("{} x {} threads x {}", alg.label(), threads, preset.name);
    assert_sim_identical(&fiber, &reference, &format!("{label} [fiber vs reference]"));
    assert_sim_identical(&parallel, &fiber, &format!("{label} [parallel vs fiber]"));

    // Sanity on the knobs themselves: the reference mode never uses a fast
    // path, the fiber mode must actually exercise its lookahead.
    assert_eq!(
        reference.total_conductor().fast_ops,
        0,
        "{label}: reference mode still fast-pathed"
    );
    assert!(
        fiber.total_conductor().fast_ops > 0,
        "{label}: fiber lookahead never engaged"
    );
}

fn matrix_over(preset: &Preset, threads: usize) {
    for alg in Algorithm::all() {
        assert_equivalent(preset, alg, threads);
    }
}

/// DAG workloads route every dependency decrement through `Comm::add`, so
/// "which predecessor's add crossed the in-degree" must conduct identically
/// in all three modes — bit-identical reports *including* the count-up cells
/// in the final memory image.
fn assert_dag_equivalent<G: worksteal::DagGen>(
    gen: &DagWorkload<G>,
    name: &str,
    alg: Algorithm,
    threads: usize,
) {
    let run = |mode: Mode| -> SimReport<ThreadResult> {
        let cfg = RunConfig::new(alg, 2);
        let cluster: SimCluster<u64> = mode.cluster(SimCluster::new(
            MachineModel::kittyhawk(),
            threads,
            vars::space_config_for(gen, threads),
        ));
        cluster.run(|c| worker(c, gen, &cfg))
    };
    let reference = run(Mode::Reference);
    let fiber = run(Mode::Fiber);
    let parallel = run(Mode::Parallel(3));
    let label = format!("{name} x {} x {threads} threads", alg.label());
    assert_sim_identical(&fiber, &reference, &format!("{label} [fiber vs reference]"));
    assert_sim_identical(&parallel, &fiber, &format!("{label} [parallel vs fiber]"));
    let total: u64 = fiber.results.iter().map(|r| r.nodes).sum();
    assert_eq!(total, gen.n_tasks(), "{label}: tasks lost or duplicated");
}

#[test]
fn all_algorithms_dag_workloads_16_threads() {
    let fj = DagWorkload::new(ForkJoin {
        levels: 4,
        width: 6,
        seed: 3,
    });
    let wf = DagWorkload::new(Wavefront {
        rows: 10,
        cols: 8,
        seed: 5,
    });
    let rl = DagWorkload::new(RandomLayered::new(6, 10, 250, 7));
    for alg in Algorithm::all() {
        assert_dag_equivalent(&fj, "fork-join", alg, 16);
        assert_dag_equivalent(&wf, "wavefront", alg, 16);
        assert_dag_equivalent(&rl, "random-layered", alg, 16);
    }
}

#[test]
fn all_algorithms_tiny_16_threads() {
    matrix_over(&presets::t_tiny(), 16);
}

#[test]
fn all_algorithms_tiny_64_threads() {
    matrix_over(&presets::t_tiny(), 64);
}

#[test]
fn all_algorithms_small_16_threads() {
    matrix_over(&presets::t_s(), 16);
}

#[test]
fn all_algorithms_small_64_threads() {
    matrix_over(&presets::t_s(), 64);
}

// ---------------------------------------------------------------- RunReport
// Service / crash / membership legs go through the engine entry points, so
// equality is asserted on the assembled `RunReport`.

fn assert_report_identical(a: &RunReport, b: &RunReport, label: &str) {
    assert_eq!(a.makespan_ns, b.makespan_ns, "{label}: makespan diverged");
    assert_eq!(a.total_nodes, b.total_nodes, "{label}: node totals diverged");
    assert_eq!(a.recovered_nodes, b.recovered_nodes, "{label}: recovery diverged");
    assert_eq!(a.duplicate_nodes, b.duplicate_nodes, "{label}: duplicates diverged");
    assert_eq!(a.max_multiplicity, b.max_multiplicity, "{label}: multiplicity diverged");
    assert_eq!(a.deaths, b.deaths, "{label}: deaths diverged");
    assert_eq!(a.evictions, b.evictions, "{label}: evictions diverged");
    assert_eq!(a.rejoins, b.rejoins, "{label}: rejoins diverged");
    assert_eq!(a.steal_attempts, b.steal_attempts, "{label}: steal attempts diverged");
    assert_eq!(a.successful_steals, b.successful_steals, "{label}: steals diverged");
    assert_eq!(a.service, b.service, "{label}: service report diverged");
    assert_eq!(a.per_thread, b.per_thread, "{label}: per-thread results diverged");
}

fn assert_three_way<F: Fn(Mode) -> RunReport>(run: F, label: &str) {
    let reference = run(Mode::Reference);
    let fiber = run(Mode::Fiber);
    let parallel = run(Mode::Parallel(3));
    assert_report_identical(&fiber, &reference, &format!("{label} [fiber vs reference]"));
    assert_report_identical(&parallel, &fiber, &format!("{label} [parallel vs fiber]"));
}

/// Service mode: open-loop arrivals, epoch quiescence, per-request
/// latencies, tail histograms — identical across all three conductors.
#[test]
fn service_mode_identical_across_three_conductors() {
    let gen = UtsGen::new(TreeSpec::binomial(23, 4, 2, 0.4));
    let arrivals = ArrivalSpec::poisson(41, 8, 25_000.0);
    for alg in [Algorithm::DistMem, Algorithm::MpiWs] {
        assert_three_way(
            |mode| {
                let cfg = mode.config(RunConfig::new(alg, 2));
                run_service_sim(MachineModel::smp(), 4, &gen, &cfg, &arrivals)
            },
            &format!("service x {}", alg.label()),
        );
    }
}

/// Crash faults: lost/duplicated grants and a guaranteed rank death replay
/// identically — same deaths, same recovery, same multiplicity — in all
/// three modes.
#[test]
fn crash_faults_identical_across_three_conductors() {
    let p = presets::t_tiny();
    let gen = UtsGen::new(p.spec);
    let plan = FaultPlan {
        loss_per_mille: 40,
        dup_per_mille: 40,
        kill_per_mille: 1000,
        kill_min_ns: 40_000,
        kill_span_ns: 200_000,
        ..FaultPlan::crashy(0xC0_FFEE)
    };
    for alg in [Algorithm::Term, Algorithm::DistMem] {
        assert_three_way(
            |mode| {
                let mut cfg = mode.config(RunConfig::new(alg, 4));
                cfg.faults = plan;
                cfg.steal_timeout_ns = Some(30_000);
                run_sim(MachineModel::kittyhawk(), 8, &gen, &cfg)
            },
            &format!("crash x {}", alg.label()),
        );
    }
}

/// Membership faults: healing partitions, gray stalls, kills with restart —
/// the fenced-membership protocol replays identically in all three modes.
#[test]
fn membership_faults_identical_across_three_conductors() {
    let p = presets::t_tiny();
    let gen = UtsGen::new(p.spec);
    let mut plan = FaultPlan {
        loss_per_mille: 20,
        dup_per_mille: 20,
        kill_per_mille: 1000,
        restart_after_ns: 250_000,
        ..FaultPlan::partitioned(0xBAD_CAFE)
    };
    plan.partition_per_mille = 1000;
    plan.partition_min_ns = 40_000;
    plan.gray_per_mille = 1000;
    for alg in [Algorithm::DistMem, Algorithm::MpiWs] {
        assert_three_way(
            |mode| {
                let mut cfg = mode.config(RunConfig::new(alg, 4));
                cfg.faults = plan;
                cfg.steal_timeout_ns = Some(30_000);
                run_sim(MachineModel::kittyhawk(), 8, &gen, &cfg)
            },
            &format!("membership x {}", alg.label()),
        );
    }
}

/// Conflict storm: 16 threads hammer put-then-get chains through a shared
/// set of cells, so almost every read races a virtually-earlier write from
/// another thread. The parallel conductor's speculative reads must fail
/// validation (`spec_conflicts`) and fall back to the committer's serial
/// replay — and the result must *still* be bit-identical to the serial
/// conductors.
#[test]
fn conflict_storm_forces_serial_replay_and_stays_bit_identical() {
    let storm = |c: &mut pgas::sim::SimComm<u64>| {
        let me = c.my_id();
        let n = c.n_threads();
        let mut acc = 0i64;
        for i in 0..200i64 {
            // Write a cell another thread is about to read, then read a cell
            // another thread just wrote — maximal cross-thread dependence.
            c.put((me + 1) % n, 0, i + me as i64);
            acc = acc.wrapping_add(c.get((me + n - 1) % n, 0));
            if i % 16 == me as i64 % 16 {
                c.work(3); // skew the clocks so no interleaving is stable
            }
        }
        acc
    };
    let run = |mode: Mode| -> SimReport<i64> {
        mode.cluster(SimCluster::<u64>::new(
            MachineModel::kittyhawk(),
            16,
            pgas::SpaceConfig::default(),
        ))
        .run(storm)
    };
    let reference = run(Mode::Reference);
    let fiber = run(Mode::Fiber);
    let parallel = run(Mode::Parallel(4));
    for (a, b, label) in [
        (&fiber, &reference, "storm [fiber vs reference]"),
        (&parallel, &fiber, "storm [parallel vs fiber]"),
    ] {
        assert_eq!(a.makespan_ns, b.makespan_ns, "{label}: makespan diverged");
        assert_eq!(a.clocks, b.clocks, "{label}: clocks diverged");
        assert_eq!(a.scalars, b.scalars, "{label}: memory diverged");
        assert_eq!(a.stats, b.stats, "{label}: comm stats diverged");
        assert_eq!(a.results, b.results, "{label}: results diverged");
    }
    let pc = parallel.total_conductor();
    assert!(
        pc.spec_conflicts > 0,
        "storm never forced the serial-replay fallback: {pc:?}"
    );
    assert!(
        pc.handoffs > 0,
        "storm never parked an operation: {pc:?}"
    );
}
