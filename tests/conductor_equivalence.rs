//! Fast-path equivalence: the simulator's lookahead conductor must be
//! invisible in every modelled quantity.
//!
//! For each load-balancing algorithm, tree, and thread count, the same run is
//! executed with the lookahead fast path enabled and disabled, and the two
//! reports are required to be *bit-identical*: virtual makespan, every
//! per-thread virtual clock, every per-thread worker result (nodes, steals,
//! releases, state times, comm counters), and the final memory image. Only
//! the conductor's own harness counters may differ — that is the whole point
//! of keeping them out of `CommStats`. See `docs/conductor.md`.

use pgas::sim::{SimCluster, SimReport};
use pgas::MachineModel;
use uts_tree::presets::{self, Preset};
use worksteal::{
    vars, worker, Algorithm, DagWorkload, RandomLayered, RunConfig, TaskGen, ThreadResult, UtsGen,
    Wavefront,
};

fn run_mode(
    preset: &Preset,
    alg: Algorithm,
    threads: usize,
    lookahead: bool,
) -> SimReport<ThreadResult> {
    let gen = UtsGen::new(preset.spec);
    let cfg = RunConfig {
        sim_lookahead: lookahead,
        ..RunConfig::new(alg, 4)
    };
    let cluster: SimCluster<<UtsGen as TaskGen>::Task> =
        SimCluster::new(MachineModel::kittyhawk(), threads, vars::space_config())
            .with_lookahead(lookahead);
    cluster.run(move |c| worker(c, &gen, &cfg))
}

fn assert_equivalent(preset: &Preset, alg: Algorithm, threads: usize) {
    let fast = run_mode(preset, alg, threads, true);
    let slow = run_mode(preset, alg, threads, false);
    let label = format!("{} x {} threads x {}", alg.label(), threads, preset.name);

    assert_eq!(
        fast.makespan_ns, slow.makespan_ns,
        "{label}: virtual makespan diverged"
    );
    assert_eq!(fast.clocks, slow.clocks, "{label}: per-thread clocks diverged");
    assert_eq!(fast.scalars, slow.scalars, "{label}: final memory diverged");
    assert_eq!(fast.stats, slow.stats, "{label}: comm stats diverged");
    for (tid, (f, s)) in fast.results.iter().zip(&slow.results).enumerate() {
        assert_eq!(f, s, "{label}: thread {tid} worker result diverged");
    }

    // Sanity on the knob itself: slow mode must never use the fast path, fast
    // mode must actually exercise it, and both must conduct the same stream.
    let (fc, sc) = (fast.total_conductor(), slow.total_conductor());
    assert_eq!(sc.fast_ops, 0, "{label}: lookahead off still fast-pathed");
    assert!(fc.fast_ops > 0, "{label}: lookahead on never fast-pathed");
    assert_eq!(
        fc.total_ops(),
        sc.total_ops(),
        "{label}: operation streams differ in length"
    );
}

fn matrix_over(preset: &Preset, threads: usize) {
    for alg in Algorithm::all() {
        assert_equivalent(preset, alg, threads);
    }
}

/// DAG workloads route every dependency decrement through `Comm::add`, so
/// "which predecessor's add crossed the in-degree" must conduct identically
/// on both paths — bit-identical reports *including* the count-up cells in
/// the final memory image.
fn assert_dag_equivalent<G: worksteal::DagGen>(gen: &DagWorkload<G>, alg: Algorithm, threads: usize) {
    let run = |lookahead: bool| -> SimReport<ThreadResult> {
        let cfg = RunConfig {
            sim_lookahead: lookahead,
            ..RunConfig::new(alg, 2)
        };
        let cluster: SimCluster<u64> = SimCluster::new(
            MachineModel::kittyhawk(),
            threads,
            vars::space_config_for(gen, threads),
        )
        .with_lookahead(lookahead);
        cluster.run(|c| worker(c, gen, &cfg))
    };
    let fast = run(true);
    let slow = run(false);
    let label = format!("DAG x {} x {threads} threads", alg.label());
    assert_eq!(fast.makespan_ns, slow.makespan_ns, "{label}: makespan diverged");
    assert_eq!(fast.clocks, slow.clocks, "{label}: clocks diverged");
    assert_eq!(fast.scalars, slow.scalars, "{label}: memory (count-up cells) diverged");
    assert_eq!(fast.stats, slow.stats, "{label}: comm stats diverged");
    assert_eq!(fast.results, slow.results, "{label}: worker results diverged");
    let total: u64 = fast.results.iter().map(|r| r.nodes).sum();
    assert_eq!(total, gen.n_tasks(), "{label}: tasks lost or duplicated");
}

#[test]
fn all_algorithms_dag_workloads_16_threads() {
    let wf = DagWorkload::new(Wavefront {
        rows: 10,
        cols: 8,
        seed: 5,
    });
    let rl = DagWorkload::new(RandomLayered::new(6, 10, 250, 7));
    for alg in Algorithm::all() {
        assert_dag_equivalent(&wf, alg, 16);
        assert_dag_equivalent(&rl, alg, 16);
    }
}

#[test]
fn all_algorithms_tiny_16_threads() {
    matrix_over(&presets::t_tiny(), 16);
}

#[test]
fn all_algorithms_tiny_64_threads() {
    matrix_over(&presets::t_tiny(), 64);
}

#[test]
fn all_algorithms_small_16_threads() {
    matrix_over(&presets::t_s(), 16);
}

#[test]
fn all_algorithms_small_64_threads() {
    matrix_over(&presets::t_s(), 64);
}
