//! Qualitative paper claims, asserted as tests. These check *shape*, not
//! absolute numbers: who uses locks, who wins where, which costs dominate.

use pgas::MachineModel;
use uts_dlb::tree::presets;
use uts_dlb::worksteal::state::State;
use uts_dlb::worksteal::{run_sim, Algorithm, RunConfig, UtsGen};

fn run(alg: Algorithm, machine: MachineModel, threads: usize, k: usize) -> uts_dlb::worksteal::RunReport {
    let p = presets::t_s();
    let gen = UtsGen::new(p.spec);
    let cfg = RunConfig::new(alg, k);
    let report = run_sim(machine, threads, &gen, &cfg);
    assert_eq!(report.total_nodes, p.expected.nodes);
    report
}

/// §3.3.3: "no locking of the DFS stack is required" — the lock-less
/// variants must issue exactly zero lock operations; the locked variants
/// must issue plenty.
#[test]
fn lockless_claim() {
    for alg in [Algorithm::DistMem, Algorithm::Hier, Algorithm::MpiWs, Algorithm::Pushing] {
        let totals = run(alg, MachineModel::kittyhawk(), 8, 4).totals();
        assert_eq!(
            totals.comm.lock_acquires + totals.comm.lock_failures + totals.comm.unlocks,
            0,
            "{} must be lock-free",
            alg.label()
        );
    }
    for alg in [Algorithm::SharedMem, Algorithm::Term, Algorithm::TermRapdif] {
        let totals = run(alg, MachineModel::kittyhawk(), 8, 4).totals();
        assert!(
            totals.comm.lock_acquires > 0,
            "{} is supposed to lock its stack",
            alg.label()
        );
    }
}

/// §3.3.3: servicing a steal request costs the victim two remote writes —
/// so total puts must cover 2 per serviced request (plus cheap local
/// bookkeeping writes).
#[test]
fn distmem_service_cost_budget() {
    let report = run(Algorithm::DistMem, MachineModel::kittyhawk(), 8, 4);
    let totals = report.totals();
    assert!(totals.requests_serviced > 0, "no steal traffic at all");
    assert!(
        totals.comm.puts >= 2 * totals.requests_serviced,
        "response protocol must write offset+amount per grant"
    );
}

/// §3.3.2 rapid diffusion: with steal-half, each successful steal moves at
/// least as many chunks on average as the steal-one variant, and
/// strictly more in aggregate on an imbalanced tree.
#[test]
fn rapid_diffusion_moves_more_chunks_per_steal() {
    let one = run(Algorithm::Term, MachineModel::kittyhawk(), 16, 2).totals();
    let half = run(Algorithm::TermRapdif, MachineModel::kittyhawk(), 16, 2).totals();
    let one_avg = one.chunks_stolen as f64 / one.steals_ok.max(1) as f64;
    let half_avg = half.chunks_stolen as f64 / half.steals_ok.max(1) as f64;
    assert!(
        (one_avg - 1.0).abs() < 1e-9,
        "steal-one moved {one_avg} chunks per steal"
    );
    assert!(
        half_avg > 1.0,
        "steal-half averaged only {half_avg} chunks per steal"
    );
}

/// §4.2 (Figure 4 shape): on the cluster model at scale, the distributed
/// algorithm beats the shared-memory algorithm decisively at small chunk
/// sizes.
#[test]
fn distmem_beats_sharedmem_on_cluster_at_small_chunks() {
    let distmem = run(Algorithm::DistMem, MachineModel::kittyhawk(), 16, 2);
    let sharedmem = run(Algorithm::SharedMem, MachineModel::kittyhawk(), 16, 2);
    assert!(
        distmem.makespan_ns * 2 < sharedmem.makespan_ns,
        "expected ≥2x gap, got distmem {} vs sharedmem {}",
        distmem.makespan_ns,
        sharedmem.makespan_ns
    );
}

/// §4.3 (Figure 6 shape): on the low-latency Altix model both UPC variants
/// are close — within a factor 1.5 of each other at moderate scale.
#[test]
fn sharedmem_competitive_on_altix() {
    let distmem = run(Algorithm::DistMem, MachineModel::altix(), 8, 8);
    let sharedmem = run(Algorithm::SharedMem, MachineModel::altix(), 8, 8);
    let ratio = sharedmem.makespan_ns as f64 / distmem.makespan_ns as f64;
    assert!(
        ratio < 1.5,
        "sharedmem should be competitive on shared memory (ratio {ratio:.2})"
    );
}

/// Working state dominates at moderate scale (the work-first principle is
/// working): most thread-time goes to Working, and the useful-work share of
/// Working time is high.
#[test]
fn working_state_dominates() {
    let report = run(Algorithm::DistMem, MachineModel::kittyhawk(), 8, 8);
    assert!(
        report.state_fraction(State::Working) > 0.5,
        "working fraction {}",
        report.state_fraction(State::Working)
    );
    assert!(
        report.working_state_efficiency() > 0.8,
        "working-state efficiency {}",
        report.working_state_efficiency()
    );
}

/// Steals actually happen and are reported coherently: successful steals
/// moved at least one chunk each; failures don't move anything.
#[test]
fn steal_accounting_coherent() {
    let report = run(Algorithm::DistMem, MachineModel::smp(), 8, 2);
    let totals = report.totals();
    assert!(totals.steals_ok > 0);
    assert!(totals.chunks_stolen >= totals.steals_ok);
    // Thread 0 starts with the root; the others' nodes arrived by theft.
    let others: u64 = report.per_thread[1..].iter().map(|t| t.nodes).sum();
    assert!(others > 0, "no distribution happened");
}
