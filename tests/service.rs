//! Service-mode end-to-end properties (`docs/service.md`):
//!
//! - **Conductor identity**: a service run is bit-identical — per-request
//!   latencies, histograms, per-thread node counts — across the fiber and
//!   reference OS-thread conductors, for smooth (Poisson) and bursty (MMPP)
//!   arrivals alike. This is the acceptance criterion of the service-mode
//!   issue, and it holds because the arrival schedule is precomputed from
//!   the spec and everything else advances on the virtual clock.
//! - **Per-epoch conservation under crash plans**: every request tree is
//!   counted exactly (with multiplicity under message loss/duplication and
//!   rank death) — `run_service_sim` asserts this internally per epoch, so
//!   these tests exercise the sweep and check the surfaced aggregates.
//! - **Overload**: an arrival burst faster than the admission window drains
//!   defers injections but never loses a request.

use pgas::{ArrivalSpec, FaultPlan, MachineModel};
use uts_dlb::worksteal::{run_service_sim, Algorithm, RunConfig, RunReport, UtsGen};
use uts_tree::TreeSpec;

/// Small per-request trees (~20 nodes expected) keep the sweeps quick.
fn small_gen() -> UtsGen {
    UtsGen::new(TreeSpec::binomial(23, 4, 2, 0.4))
}

fn service_run(
    alg: Algorithm,
    threads: usize,
    arrivals: &ArrivalSpec,
    faults: FaultPlan,
    reference: bool,
) -> RunReport {
    let mut cfg = RunConfig::new(alg, 2);
    cfg.faults = faults;
    cfg.sim_lookahead = !reference;
    run_service_sim(MachineModel::smp(), threads, &small_gen(), &cfg, arrivals)
}

/// The fiber conductor and the reference OS-thread conductor produce the
/// same service report bit for bit, across transports and arrival shapes.
#[test]
fn service_reports_identical_across_conductors() {
    let poisson = ArrivalSpec::poisson(41, 10, 25_000.0);
    let mmpp = ArrivalSpec::mmpp(42, 10, 4_000.0, 80_000.0, 200_000);
    for arrivals in [&poisson, &mmpp] {
        for alg in [Algorithm::Term, Algorithm::DistMem, Algorithm::MpiWs] {
            let fast = service_run(alg, 4, arrivals, FaultPlan::none(), false);
            let reference = service_run(alg, 4, arrivals, FaultPlan::none(), true);
            assert_eq!(
                fast.service, reference.service,
                "{} service report diverged across conductors ({:?})",
                alg.label(),
                arrivals.process
            );
            assert_eq!(fast.makespan_ns, reference.makespan_ns, "{}", alg.label());
            let nf: Vec<u64> = fast.per_thread.iter().map(|t| t.nodes).collect();
            let nr: Vec<u64> = reference.per_thread.iter().map(|t| t.nodes).collect();
            assert_eq!(nf, nr, "{} per-thread node counts diverged", alg.label());
        }
    }
}

/// Crash-class chaos sweep: message loss, duplication, and a mid-run rank
/// death must never lose a request or break per-epoch conservation (the
/// assembly asserts conservation-with-multiplicity for every epoch; a
/// violated epoch panics the run). The sweep must actually exercise the
/// crash machinery: at least one schedule kills a rank, and at least one
/// produces duplicate explorations.
#[test]
fn crash_chaos_service_conserves_every_epoch() {
    let arrivals = ArrivalSpec::poisson(7, 8, 10_000.0);
    let mut deaths = 0usize;
    let mut dups = 0u64;
    for seed in 0..8u64 {
        // Stock crashy loss/dup rates (30‰) rarely hit on these short runs;
        // crank them so the lineage re-injection path actually fires.
        let plan = FaultPlan {
            loss_per_mille: 250,
            dup_per_mille: 250,
            ..FaultPlan::crashy(seed)
        };
        for alg in [Algorithm::DistMem, Algorithm::MpiWs] {
            let report = service_run(alg, 6, &arrivals, plan, false);
            let svc = report.service.as_ref().expect("service report");
            assert_eq!(svc.requests, 8, "{} seed {seed}", alg.label());
            assert_eq!(svc.per_request.len(), 8, "{} seed {seed}", alg.label());
            deaths += report.deaths;
            dups += report.duplicate_nodes;
        }
    }
    assert!(deaths > 0, "no crash schedule killed a rank — sweep too tame");
    assert!(
        dups > 0,
        "no schedule re-explored a node — loss/duplication hardening untested"
    );
}

/// Membership sweep (docs/faults.md §8): *healing* partitions, gray stalls,
/// kills and restarts against the open-loop service — through partition →
/// quorum eviction → heal → fence rejoin, every request must still be
/// injected, completed, and conserved per epoch (the assembly panics on any
/// lost epoch or conservation break). Service sweeps use healing partitions
/// only: an epoch whose tasks sit with a frozen zombie stays open until the
/// zombie thaws and drains them, so an un-healed partition would correctly
/// keep its epoch open forever. The sweep must actually drive the fenced
/// membership machinery at least once.
#[test]
fn membership_chaos_service_loses_no_requests() {
    let arrivals = ArrivalSpec::poisson(13, 8, 12_000.0);
    let mut evictions = 0u64;
    let mut rejoins = 0u64;
    for seed in 0..6u64 {
        let mut plan = FaultPlan {
            partition_per_mille: 1000,
            partition_min_ns: 30_000,
            partition_span_ns: 120_000,
            kill_per_mille: if seed % 2 == 0 { 1000 } else { 0 },
            restart_after_ns: 250_000,
            ..FaultPlan::partitioned(seed)
        };
        plan.gray_per_mille = if seed % 2 == 1 { 1000 } else { 0 };
        for alg in [Algorithm::DistMem, Algorithm::MpiWs, Algorithm::Pushing] {
            let mut cfg = RunConfig::new(alg, 2);
            cfg.faults = plan;
            cfg.steal_timeout_ns = Some(30_000);
            let report =
                run_service_sim(MachineModel::smp(), 6, &small_gen(), &cfg, &arrivals);
            let svc = report.service.as_ref().expect("service report");
            assert_eq!(svc.requests, 8, "{} seed {seed}", alg.label());
            assert_eq!(
                svc.per_request.len(),
                8,
                "{} seed {seed}: lost a request",
                alg.label()
            );
            evictions += report.evictions;
            rejoins += report.rejoins;
        }
    }
    assert!(
        evictions > 0,
        "no membership schedule drove a quorum eviction — sweep too tame"
    );
    assert!(rejoins > 0, "no rank ever rejoined — fence/restart path untested");
}

/// Crash service runs are deterministic too: same plan, same report.
#[test]
fn crash_service_is_deterministic() {
    let arrivals = ArrivalSpec::poisson(3, 6, 15_000.0);
    let a = service_run(Algorithm::MpiWs, 5, &arrivals, FaultPlan::crashy(2), false);
    let b = service_run(Algorithm::MpiWs, 5, &arrivals, FaultPlan::crashy(2), false);
    assert_eq!(a.service, b.service);
    assert_eq!(a.makespan_ns, b.makespan_ns);
    assert_eq!(a.duplicate_nodes, b.duplicate_nodes);
    assert_eq!(a.deaths, b.deaths);
}

/// An arrival burst far beyond the admission window: injections defer (the
/// open-loop client keeps its schedule; rank 0 queues) but every request
/// still completes, and deferred epochs report latency from their
/// *scheduled* arrival, so queueing shows up in the tail.
#[test]
fn overload_defers_injections_but_loses_nothing() {
    // 2M requests/s nominal: the whole schedule is due instantly.
    let arrivals = ArrivalSpec::poisson(11, 40, 2_000_000.0);
    let report = service_run(Algorithm::DistMem, 4, &arrivals, FaultPlan::none(), false);
    let svc = report.service.expect("service report");
    assert_eq!(svc.per_request.len(), 40);
    assert!(
        svc.deferred_injections > 0,
        "a 2M/s burst against a 16-epoch window must defer"
    );
    // Later epochs queue behind the window: their latency (measured from
    // the scheduled arrival) must dominate the earliest epoch's.
    let first = svc.per_request.first().unwrap().latency_ns;
    let last = svc.per_request.last().unwrap().latency_ns;
    assert!(
        last > first,
        "queueing delay missing from deferred epochs: first={first} last={last}"
    );
}
