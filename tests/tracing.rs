//! Trace subsystem integration: event logs reflect the counters, diffusion
//! and steal-matrix analyses are consistent with the run report, and
//! tracing does not change the computation.

use pgas::MachineModel;
use uts_dlb::tree::presets;
use uts_dlb::worksteal::trace::{render_timeline, Event};
use uts_dlb::worksteal::{run_sim, Algorithm, RunConfig, UtsGen};

fn traced_run(alg: Algorithm) -> uts_dlb::worksteal::RunReport {
    let p = presets::t_s();
    let gen = UtsGen::new(p.spec);
    let mut cfg = RunConfig::new(alg, 4);
    cfg.trace = true;
    let report = run_sim(MachineModel::kittyhawk(), 6, &gen, &cfg);
    assert_eq!(report.total_nodes, p.expected.nodes);
    report
}

#[test]
fn events_match_counters() {
    for alg in [Algorithm::DistMem, Algorithm::Term, Algorithm::MpiWs] {
        let report = traced_run(alg);
        for (t, r) in report.per_thread.iter().enumerate() {
            let ok = r
                .events
                .iter()
                .filter(|e| matches!(e, Event::StealOk { .. }))
                .count() as u64;
            let fail = r
                .events
                .iter()
                .filter(|e| matches!(e, Event::StealFail { .. }))
                .count() as u64;
            assert_eq!(ok, r.steals_ok, "{} thread {t} steal-ok", alg.label());
            assert_eq!(
                fail,
                r.steals_failed,
                "{} thread {t} steal-fail",
                alg.label()
            );
        }
    }
}

#[test]
fn steal_matrix_total_matches_report() {
    let report = traced_run(Algorithm::DistMem);
    assert_eq!(report.steal_matrix().total(), report.total_steals());
}

#[test]
fn event_timestamps_monotone_per_thread() {
    let report = traced_run(Algorithm::DistMem);
    for r in &report.per_thread {
        let mut last = 0u64;
        for e in &r.events {
            let t = match e {
                Event::Enter { t_ns, .. }
                | Event::StealOk { t_ns, .. }
                | Event::StealFail { t_ns, .. }
                | Event::StealTimeout { t_ns, .. }
                | Event::Retract { t_ns, .. }
                | Event::Release { t_ns }
                | Event::Death { t_ns, .. }
                | Event::Adopt { t_ns, .. }
                | Event::Reinject { t_ns, .. }
                | Event::Evict { t_ns, .. }
                | Event::Rejoin { t_ns, .. } => *t_ns,
            };
            assert!(t >= last, "event time went backwards");
            last = t;
        }
    }
}

#[test]
fn diffusion_covers_all_threads_on_big_enough_tree() {
    let report = traced_run(Algorithm::DistMem);
    let d = report.diffusion();
    // 45k nodes across 6 threads: everyone gets work.
    assert!(d.t100_ns.is_some(), "some thread starved: {:?}", d.first_work_ns);
    assert!(d.t50_ns.unwrap() <= d.t90_ns.unwrap());
    assert!(d.t90_ns.unwrap() <= d.t100_ns.unwrap());
    assert!(d.t100_ns.unwrap() <= report.makespan_ns);
    // Thread 0 is born with the root.
    assert_eq!(d.first_work_ns[0], Some(0).map(|_| d.first_work_ns[0].unwrap()));
    assert!(d.first_work_ns[0].unwrap() <= d.t50_ns.unwrap());
}

#[test]
fn untraced_runs_have_no_events_and_same_result() {
    let p = presets::t_tiny();
    let gen = UtsGen::new(p.spec);
    let mut cfg = RunConfig::new(Algorithm::DistMem, 2);
    cfg.trace = false;
    let plain = run_sim(MachineModel::kittyhawk(), 4, &gen, &cfg);
    cfg.trace = true;
    let traced = run_sim(MachineModel::kittyhawk(), 4, &gen, &cfg);
    assert!(plain.per_thread.iter().all(|t| t.events.is_empty()));
    assert!(traced.per_thread.iter().any(|t| !t.events.is_empty()));
    // Tracing must not perturb the virtual execution at all.
    assert_eq!(plain.makespan_ns, traced.makespan_ns);
    assert_eq!(plain.total_steals(), traced.total_steals());
}

#[test]
fn timeline_has_one_row_per_thread() {
    let report = traced_run(Algorithm::DistMem);
    let s = render_timeline(&report.event_logs(), report.makespan_ns, 60);
    assert_eq!(s.lines().count(), report.threads);
    assert!(s.contains('W'), "no working time rendered:\n{s}");
}

/// §3.3.2 rapid diffusion, measured: steal-half reaches full coverage no
/// later than steal-one on the same workload (with margin for noise we
/// assert ≤ 1.5x).
#[test]
fn rapdif_diffuses_no_slower() {
    let one = traced_run(Algorithm::Term).diffusion();
    let half = traced_run(Algorithm::TermRapdif).diffusion();
    let (t_one, t_half) = (one.t90_ns.unwrap(), half.t90_ns.unwrap());
    assert!(
        t_half as f64 <= t_one as f64 * 1.5,
        "steal-half t90 {t_half} vs steal-one t90 {t_one}"
    );
}
