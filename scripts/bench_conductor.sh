#!/bin/bash
# CI smoke for the simulator's conductor fast path (docs/conductor.md §6).
#
# Builds and runs conductor_bench at the seconds-scale smoke point
# (T-S, 64 threads, kittyhawk, upc-distmem, k=8), asserts fast vs slow
# virtual results are bit-identical, and fails (exit 1) if the fast/slow
# wall-clock speedup regresses more than 20% below the committed baseline
# in scripts/conductor_baseline.json.
#
# Extra arguments are passed through to conductor_bench, e.g.:
#   scripts/bench_conductor.sh --repeats 5
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build --release --offline -p uts-bench --bin conductor_bench
mkdir -p results/logs
./target/release/conductor_bench --smoke \
  --baseline scripts/conductor_baseline.json \
  --out results/logs/BENCH_conductor_smoke.json \
  "$@" | tee results/logs/conductor_smoke.log
