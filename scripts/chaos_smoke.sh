#!/bin/bash
# CI smoke for the fault-injection chaos soak (docs/faults.md §6).
#
# Runs a bounded sweep of seeded fault schedules across all five paper
# algorithms on T-tiny with the steal timeout armed. Each run must
# terminate with the exact sequential node count; the binary exits nonzero
# on any conservation or termination violation (or if the wall-clock
# budget is blown, which indicates a livelock). Sized for a tier-1 time
# budget: the default 50-schedule sweep completes in a few seconds.
#
# Extra arguments are passed through to the chaos binary, e.g.:
#   scripts/chaos_smoke.sh --schedules 200 --tree s --threads 64
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build --release --offline -p uts-bench --bin chaos
mkdir -p results/logs
./target/release/chaos --schedules 50 --threads 16 --budget-s 120 \
  "$@" | tee results/logs/chaos_smoke.log
