#!/bin/bash
# CI smoke for the fault-injection chaos soak (docs/faults.md §6).
#
# Runs a bounded sweep of seeded fault schedules across all five paper
# algorithms on T-tiny with the steal timeout armed, then a crash-class
# sweep (message loss/duplication + rank death) checked for conservation
# with multiplicity, then a membership sweep (docs/faults.md §8: healing
# partitions, gray stalls, kills, restarts) checked for conservation with
# multiplicity in batch mode, bit-identity on a reference-conductor
# subset, and zero lost requests in service mode. Each seeded run must
# terminate with the exact sequential node count; the binary exits
# nonzero on any conservation or termination violation, printing the
# offending algorithm and full FaultPlan for replay — membership
# violations come with a paste-ready UTS_CHAOS_* env line for uts_cli. A
# blown wall-clock budget also fails (livelock). Sized for a tier-1 time
# budget: the default 50+50+50-schedule sweep completes in a few seconds.
#
# Extra arguments are passed through to the chaos binary, e.g.:
#   scripts/chaos_smoke.sh --schedules 200 --tree s --threads 64
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build --release --offline -p uts-bench --bin chaos --bin service --bin dag_sweep
mkdir -p results/logs
# Arm the protocol watchdogs even in this release build so a livelocked
# loop dies with a named panic rather than eating the whole budget.
UTS_WATCHDOG_RELEASE=1 \
./target/release/chaos --schedules 50 --membership-schedules 50 \
  --threads 16 --budget-s 120 \
  "$@" | tee results/logs/chaos_smoke.log

# Service-mode smoke (docs/service.md): a low-rate arrival stream on a
# locked and a message bundle, fault-free and under a crash plan; asserts
# every request completes and per-epoch conservation holds.
UTS_WATCHDOG_RELEASE=1 \
./target/release/service --smoke | tee results/logs/service_smoke.log

# DAG-workload smoke (docs/workloads.md, EXPERIMENTS.md E18): shrunken DAG
# families plus the tree baseline through one bundle per transport, with
# the steal-bound and conservation theory checks asserted on every row
# (the binary panics on any violation). Smoke runs never overwrite
# results/dag_sweep.csv.
UTS_WATCHDOG_RELEASE=1 \
./target/release/dag_sweep --smoke | tee results/logs/dag_sweep_smoke.log
