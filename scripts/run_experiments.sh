#!/bin/bash
# Regenerate every experiment in EXPERIMENTS.md.
# Total runtime on a single modern core: roughly 1-2 hours (the Figure 4
# sweep and the T-XXL headline run dominate). Results land in results/*.csv,
# logs in results/logs/, figures in results/figures/.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build --release -p uts-bench -p uts-viz
mkdir -p results/logs
B=./target/release
run() { echo "== $1"; shift; "$@" 2>&1 | tee "results/logs/$1.log" >/dev/null; }

$B/table_seq        | tee results/logs/table_seq.log
$B/fig3             | tee results/logs/fig3.log
$B/scale_eff        > results/logs/scale_eff.log
$B/ablation         > results/logs/ablation.log
$B/working_state    > results/logs/working_state.log
$B/hier             > results/logs/hier.log
$B/pushing_cmp      > results/logs/pushing.log
$B/diffusion        > results/logs/diffusion.log
$B/poll_sweep       > results/logs/poll_sweep.log
$B/tree_family      > results/logs/tree_family.log
$B/model_check      > results/logs/model_check.log
$B/fig4             > results/logs/fig4.log
$B/fig5             > results/logs/fig5.log
$B/fig6 --tree l    > results/logs/fig6_l.log
# Headline: ~8 minutes of simulation on the 88.9M-node tree.
$B/fig5 --tree xxl --alg distmem --min-threads 256 > results/logs/headline_xxl.log
$B/render_figs
echo "all experiments complete"
