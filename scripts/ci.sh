#!/usr/bin/env bash
# Repository CI gate: build, test, lint. Run from the repo root.
#
#   scripts/ci.sh
#
# Mirrors what reviewers run before merging; keep it green.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo test -q (parallel conductor, UTS_SIM_WORKERS=2) =="
# Tier-1 must also hold when the sim backend runs the ticketed parallel
# pipeline: same suite, conductor selection flipped via the environment.
UTS_SIM_WORKERS=2 cargo test -q

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

echo "== doc drift =="
# Every design note must be reachable from the README, and every concrete
# file path a doc mentions must exist — stale references fail the build.
for doc in docs/*.md; do
  if [ "$doc" != "docs/README.md" ] && ! grep -q "$(basename "$doc")" README.md docs/README.md; then
    echo "doc drift: $doc is not linked from README.md or docs/README.md" >&2
    exit 1
  fi
done
paths=$(grep -rhoE '(crates|tests|scripts|examples|src|docs|results)/[A-Za-z0-9_/.-]+\.(rs|sh|csv|md|toml|svg)' docs/*.md README.md DESIGN.md | sort -u)
for p in $paths; do
  if [ ! -e "$p" ]; then
    echo "doc drift: referenced path $p does not exist" >&2
    exit 1
  fi
done

echo "== chaos smoke (fault + crash sweeps) =="
scripts/chaos_smoke.sh

echo "CI OK"
