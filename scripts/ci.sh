#!/usr/bin/env bash
# Repository CI gate: build, test, lint. Run from the repo root.
#
#   scripts/ci.sh
#
# Mirrors what reviewers run before merging; keep it green.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

echo "== chaos smoke (fault + crash sweeps) =="
scripts/chaos_smoke.sh

echo "CI OK"
